//! Parallel-construction determinism harness: [`ShortcutStore::build`]
//! with any worker-thread count must be **byte-identical** — same
//! serialized bytes, same per-Rnet iteration order — to the fully
//! sequential build, across random worlds, both contraction orders and
//! forced witness budgets.  The scheduler owns *when* an Rnet's map is
//! computed, never *what* it contains or *where* it lands: workers write
//! into per-Rnet indexed slots and the caller commits them in hierarchy
//! order, which is the whole byte-equality argument (see
//! ARCHITECTURE.md, "Parallel construction").
//!
//! The same must hold for maintenance: a batched, level-parallel repair
//! ([`RoadFramework::set_edge_weights`]) has to leave the framework
//! byte-identical to applying the same updates one at a time through the
//! sequential per-Rnet refresh chain.
//!
//! Weights are exact in f64 (small integers / dyadic rationals), so
//! "equivalent" and "bit-identical" coincide — any scheduling leak shows
//! up as a byte diff, not as an approx-eq near miss.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_core::shortcut::{ShortcutOptions, ShortcutStore};
use road_core::{HierarchyConfig, RnetHierarchy, UpdateOutcome};
use road_network::contractor::ContractionOrder;
use road_network::generator::simple;
use road_network::graph::RoadNetwork;
use road_network::ids::EdgeId;

/// Rewrites every edge's Distance weight deterministically from `seed` —
/// small integers or dyadic rationals `k/64`, both exact in f64.
fn reweight(g: &mut RoadNetwork, seed: u64, dyadic: bool) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_AD1C);
    let edges: Vec<_> = g.edge_ids().collect();
    for &e in &edges {
        let w = if dyadic {
            Weight::new(rng.random_range(1..=1024u32) as f64 / 64.0)
        } else {
            Weight::new(rng.random_range(1..=16u32) as f64)
        };
        g.set_weight(e, WeightKind::Distance, w).unwrap();
    }
}

fn serialize(store: &ShortcutStore) -> Vec<u8> {
    let mut out = Vec::new();
    store.serialize_into(&mut out);
    out
}

fn hier_for(g: &RoadNetwork, fanout: usize, levels: u32) -> RnetHierarchy {
    RnetHierarchy::build(g, &HierarchyConfig { fanout, levels, ..Default::default() }).unwrap()
}

/// Builds sequentially, then with 2/4/8 workers, and diffs the bytes.
fn assert_thread_counts_byte_identical(
    g: &RoadNetwork,
    hier: &RnetHierarchy,
    opts: &ShortcutOptions,
    label: &str,
) {
    let seq_opts = ShortcutOptions { threads: 1, ..*opts };
    let reference = ShortcutStore::build(g, hier, WeightKind::Distance, &seq_opts);
    let ref_bytes = serialize(&reference);
    for threads in [2usize, 4, 8] {
        let par_opts = ShortcutOptions { threads, ..*opts };
        let store = ShortcutStore::build(g, hier, WeightKind::Distance, &par_opts);
        assert_eq!(
            store.rnet_source_orders(),
            reference.rnet_source_orders(),
            "{label}: iteration order diverged at {threads} threads"
        );
        assert_eq!(
            serialize(&store),
            ref_bytes,
            "{label}: serialized bytes diverged at {threads} threads"
        );
        assert_eq!(
            store.size_bytes(),
            reference.size_bytes(),
            "{label}: incremental byte accounting diverged at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random connected worlds under every (contraction order × witness
    /// budget × fanout) combination the sequential suite pins: thread
    /// counts 1/2/4/8 all serialize to the same bytes.
    #[test]
    fn parallel_build_is_byte_identical(
        n in 16usize..70,
        extra in 0usize..25,
        seed in 0u64..1000,
        dyadic in (0u8..2).prop_map(|b| b == 1),
        fanout in (1u32..3).prop_map(|p| 1usize << p),
        order in (0u8..3).prop_map(|o| match o {
            0 => ContractionOrder::MinDegree,
            1 => ContractionOrder::InputOrder,
            _ => ContractionOrder::ReverseInput,
        }),
        budget in (0u8..4).prop_map(|b| match b {
            0 => None,
            1 => Some(0),
            2 => Some(4),
            _ => Some(1 << 20),
        }),
    ) {
        let mut g = simple::random_connected(n, extra, seed);
        reweight(&mut g, seed, dyadic);
        let levels = if fanout >= 4 { 2 } else { 3 };
        let hier = hier_for(&g, fanout, levels);
        let opts = ShortcutOptions {
            contraction_order: order,
            witness_budget: budget,
            ..Default::default()
        };
        assert_thread_counts_byte_identical(&g, &hier, &opts,
            &format!("n={n} extra={extra} seed={seed} dyadic={dyadic} fanout={fanout} order={order:?} budget={budget:?}"));
    }

    /// Repair parity: a weight-update storm applied as one batched,
    /// level-parallel repair leaves the framework byte-identical to the
    /// same updates applied one edge at a time through the sequential
    /// refresh chain — and both frameworks still verify against a fresh
    /// rebuild.
    #[test]
    fn batched_parallel_repair_matches_sequential(
        n in 20usize..60,
        extra in 2usize..20,
        seed in 0u64..1000,
        storm in 3usize..24,
    ) {
        let mut g = simple::random_connected(n, extra, seed);
        reweight(&mut g, seed, false);

        let build = |threads: usize, g: RoadNetwork| {
            RoadFramework::builder(g)
                .fanout(2)
                .levels(3)
                .shortcut_threads(threads)
                .build()
                .unwrap()
        };
        let mut fw_seq = build(1, g.clone());
        let mut fw_par = build(4, g.clone());
        prop_assert_eq!(fw_seq.to_bytes(), fw_par.to_bytes(), "parallel construction diverged");

        // Distinct edges, fresh exact integer weights.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5708_4EED);
        let edges: Vec<_> = g.edge_ids().collect();
        let mut updates: Vec<(EdgeId, Weight)> = Vec::new();
        let mut picked = std::collections::HashSet::new();
        while updates.len() < storm.min(edges.len()) {
            let e = edges[rng.random_range(0..edges.len())];
            if picked.insert(e) {
                updates.push((e, Weight::new(rng.random_range(1..=16u32) as f64)));
            }
        }

        let mut seq_outcome = UpdateOutcome::default();
        for &(e, w) in &updates {
            seq_outcome.absorb(&fw_seq.set_edge_weight(e, w).unwrap());
        }
        let par_outcome = fw_par.set_edge_weights(&updates).unwrap();

        prop_assert_eq!(fw_seq.to_bytes(), fw_par.to_bytes(), "repair bytes diverged");
        // The batch repairs each affected Rnet at most once per update
        // wave; edge-at-a-time repair can only do more work.
        prop_assert!(par_outcome.rnets_refreshed <= seq_outcome.rnets_refreshed);
        fw_seq.verify().unwrap();
        fw_par.verify().unwrap();
    }
}

/// The `threads` knob composes with the other output-independent knobs on
/// a fixed world — the deterministic cousin of the proptest above, cheap
/// enough to run on every push.
#[test]
fn thread_counts_agree_across_orders_and_budgets() {
    let mut g = simple::grid(9, 8, 1.0);
    reweight(&mut g, 42, false);
    let hier = hier_for(&g, 2, 3);
    for order in
        [ContractionOrder::MinDegree, ContractionOrder::InputOrder, ContractionOrder::ReverseInput]
    {
        for budget in [None, Some(0), Some(4)] {
            let opts = ShortcutOptions {
                contraction_order: order,
                witness_budget: budget,
                ..Default::default()
            };
            assert_thread_counts_byte_identical(
                &g,
                &hier,
                &opts,
                &format!("grid 9x8 order={order:?} budget={budget:?}"),
            );
        }
    }
}

/// `size_bytes` is maintained incrementally through build and repair;
/// round-tripping through the serialized form (which recounts from the
/// decoded maps) must land on the same number.
#[test]
fn size_bytes_survives_maintenance_and_roundtrip() {
    let mut g = simple::grid(8, 8, 1.0);
    reweight(&mut g, 7, false);
    let mut fw = RoadFramework::builder(g.clone()).fanout(2).levels(3).build().unwrap();
    let fresh = RoadFramework::from_bytes(&fw.to_bytes()).unwrap();
    assert_eq!(fw.shortcuts().size_bytes(), fresh.shortcuts().size_bytes());

    let mut rng = StdRng::seed_from_u64(0xB17E);
    let edges: Vec<_> = g.edge_ids().collect();
    let updates: Vec<(EdgeId, Weight)> = (0..10)
        .map(|_| {
            let e = edges[rng.random_range(0..edges.len())];
            (e, Weight::new(rng.random_range(1..=16u32) as f64))
        })
        .collect();
    fw.set_edge_weights(&updates).unwrap();
    let fresh = RoadFramework::from_bytes(&fw.to_bytes()).unwrap();
    assert_eq!(
        fw.shortcuts().size_bytes(),
        fresh.shortcuts().size_bytes(),
        "incrementally maintained byte count drifted from a recount"
    );
    assert_eq!(fw.shortcuts().num_shortcuts(), fresh.shortcuts().num_shortcuts());
}

/// Oversubscription smoke: more workers than Rnets (and than cores) must
/// neither wedge nor change bytes.
#[test]
fn oversubscribed_threads_are_harmless() {
    let mut g = simple::grid(6, 6, 1.0);
    reweight(&mut g, 3, true);
    let hier = hier_for(&g, 2, 2);
    let seq = ShortcutStore::build(
        &g,
        &hier,
        WeightKind::Distance,
        &ShortcutOptions { threads: 1, ..Default::default() },
    );
    let over = ShortcutStore::build(
        &g,
        &hier,
        WeightKind::Distance,
        &ShortcutOptions { threads: 64, ..Default::default() },
    );
    assert_eq!(serialize(&seq), serialize(&over));
}
