//! Persistence round-trip tests: a restored framework must be
//! indistinguishable from the original — same answers, same shortcut
//! distances, and fully maintainable afterwards.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_core::search::oracle_knn;
use road_network::generator::{simple, Dataset};
use road_network::EdgeId;

fn scatter(fw: &RoadFramework, count: usize, seed: u64) -> AssociationDirectory {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for i in 0..count {
        let o = Object::new(
            ObjectId(i as u64),
            edges[rng.random_range(0..edges.len())],
            rng.random_range(0.0..=1.0),
            CategoryId(0),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    ad
}

#[test]
fn roundtrip_preserves_everything() {
    let net = Dataset::CaHighways.generate_scaled(0.03, 21).unwrap();
    let original = RoadFramework::builder(net)
        .fanout(4)
        .levels(3)
        .metric(WeightKind::TravelTime)
        .build()
        .unwrap();
    let bytes = original.to_bytes();
    let restored = RoadFramework::from_bytes(&bytes).unwrap();

    assert_eq!(restored.metric(), original.metric());
    assert_eq!(restored.hierarchy().levels(), original.hierarchy().levels());
    assert_eq!(restored.hierarchy().fanout(), original.hierarchy().fanout());
    assert_eq!(restored.network().num_nodes(), original.network().num_nodes());
    assert_eq!(restored.network().num_edges(), original.network().num_edges());
    assert_eq!(restored.shortcuts().num_shortcuts(), original.shortcuts().num_shortcuts());
    // The restored overlay is exactly what a fresh rebuild would produce.
    restored.verify().unwrap();

    // Identical query answers on a directory mapped onto each copy.
    let ad_orig = scatter(&original, 12, 5);
    let ad_rest = scatter(&restored, 12, 5);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..10 {
        let node = NodeId(rng.random_range(0..original.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 4);
        let a = original.knn(&ad_orig, &q).unwrap();
        let b = restored.knn(&ad_rest, &q).unwrap();
        assert_eq!(a.hits.len(), b.hits.len());
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.object, y.object);
            assert!(x.distance.approx_eq(y.distance));
        }
    }
}

#[test]
fn roundtrip_with_tombstoned_edges_and_maintenance() {
    let mut fw =
        RoadFramework::builder(simple::grid(9, 9, 1.0)).fanout(2).levels(3).build().unwrap();
    // Mutate before saving: weight changes and a structural deletion.
    let e0 = fw.network().edge_ids().next().unwrap();
    fw.set_edge_weight(e0, Weight::new(7.5)).unwrap();
    let victim = fw.network().edge_ids().nth(20).unwrap();
    fw.remove_edge(victim, &[]).unwrap();

    let restored = RoadFramework::from_bytes(&fw.to_bytes()).unwrap();
    assert_eq!(restored.network().num_edges(), fw.network().num_edges());
    assert!(restored.network().edge(victim).is_deleted());
    assert_eq!(restored.network().weight(e0, restored.metric()), Weight::new(7.5));
    restored.verify().unwrap();

    // The restored framework keeps maintaining correctly.
    let mut restored = restored;
    let ad = scatter(&restored, 8, 3);
    let e1 = restored.network().edge_ids().nth(5).unwrap();
    restored.set_edge_weight(e1, Weight::new(0.1)).unwrap();
    let q = KnnQuery::new(NodeId(40), 3);
    let got = restored.knn(&ad, &q).unwrap();
    let want = oracle_knn(&restored, &ad, &q);
    assert_eq!(got.hits.len(), want.len());
    for (x, y) in got.hits.iter().zip(&want) {
        assert!(x.distance.approx_eq(y.distance));
    }
}

#[test]
fn corrupt_inputs_are_rejected() {
    let fw = RoadFramework::builder(simple::grid(4, 4, 1.0)).fanout(2).levels(2).build().unwrap();
    let bytes = fw.to_bytes();
    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(RoadFramework::from_bytes(&bad).is_err());
    // Truncations at every prefix length must error, never panic.
    for cut in [0, 1, 7, 8, 9, 20, bytes.len() / 2, bytes.len() - 1] {
        assert!(RoadFramework::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    // Trailing garbage.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 3]);
    assert!(RoadFramework::from_bytes(&padded).is_err());
    // Bad metric tag.
    let mut bad = bytes.clone();
    bad[8] = 9;
    assert!(RoadFramework::from_bytes(&bad).is_err());
}

/// Systematic robustness sweep: truncations at every stride must return
/// `RoadError` (never panic or over-allocate), bit flips at every stride
/// must either fail cleanly or produce a framework that can actually
/// serve, and both the monolithic and page-granular open paths must hold
/// the line. This pins the satellite guarantee "corrupt images can never
/// take a serving process down".
#[test]
fn systematic_corruption_never_panics() {
    let fw = RoadFramework::builder(simple::grid(5, 5, 1.0)).fanout(2).levels(2).build().unwrap();
    let bytes = fw.to_bytes();

    // Truncation at every 3rd prefix length: always a clean error.
    for cut in (0..bytes.len()).step_by(3) {
        assert!(RoadFramework::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} parsed");
        assert!(
            road_core::PagedImage::open(bytes[..cut].to_vec()).is_err(),
            "paged open of truncation at {cut} parsed"
        );
    }

    // One flipped bit at every 7th byte: Ok(usable) or Err, never a panic.
    for at in (0..bytes.len()).step_by(7) {
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x10;
        if let Ok(restored) = RoadFramework::from_bytes(&flipped) {
            // Whatever parsed must be servable without panicking (a clean
            // query error is fine; e.g. the flip shrank the node count).
            let ad = AssociationDirectory::new(restored.hierarchy());
            let _ = restored.knn(&ad, &KnnQuery::new(NodeId(0), 1));
        }
        if let Ok(image) = road_core::PagedImage::open(flipped) {
            let _ = image.into_framework().map(|restored| {
                let ad = AssociationDirectory::new(restored.hierarchy());
                let _ = restored.knn(&ad, &KnnQuery::new(NodeId(0), 1));
            });
        }
    }
}

/// Absurd element counts written into the header region must be rejected
/// up front instead of driving giant allocations (the OOM vector: a
/// `u32::MAX` count used as a `Vec::with_capacity` hint).
#[test]
fn absurd_counts_fail_fast_without_allocating() {
    let fw = RoadFramework::builder(simple::grid(4, 4, 1.0)).fanout(2).levels(1).build().unwrap();
    let bytes = fw.to_bytes();
    // Offsets of the u32 count fields in the format: num_nodes at 18,
    // edge_slots right after the node table, and the shortcut store's
    // num_rnets near the end (patch a huge per-source edge count instead:
    // first u32 after num_rnets+num_sources).
    let num_nodes_at = 18;
    let mut bad = bytes.clone();
    bad[num_nodes_at..num_nodes_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(RoadFramework::from_bytes(&bad).is_err());
    assert!(road_core::PagedImage::open(bad).is_err());

    let edge_slots_at = 18 + 4 + 16 * fw.network().num_nodes();
    let mut bad = bytes.clone();
    bad[edge_slots_at..edge_slots_at + 4].copy_from_slice(&0x7FFF_FFFFu32.to_le_bytes());
    assert!(RoadFramework::from_bytes(&bad).is_err());
    assert!(road_core::PagedImage::open(bad).is_err());
}

/// Walks the shortcut-store section (the last section of the image,
/// laid out as `num_rnets`, then per Rnet `num_sources`, per source
/// `from num_edges`, per edge `to dist via_len via…`) and returns the
/// byte offsets of the first non-empty Rnet's `num_sources` field and
/// of the first edge's `via_len` field.
fn shortcut_count_offsets(bytes: &[u8], store_at: usize) -> (usize, usize) {
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let num_rnets = u32_at(store_at);
    let mut pos = store_at + 4;
    let mut sources_at = None;
    for _ in 0..num_rnets {
        let num_sources = u32_at(pos);
        if num_sources > 0 && sources_at.is_none() {
            sources_at = Some(pos);
        }
        pos += 4;
        for _ in 0..num_sources {
            pos += 4; // from
            let num_edges = u32_at(pos);
            pos += 4;
            for _ in 0..num_edges {
                pos += 4 + 8; // to + dist
                let via_len = u32_at(pos);
                if let Some(s) = sources_at {
                    return (s, pos);
                }
                pos += 4 + via_len * 4;
            }
        }
    }
    panic!("grid framework built no shortcuts to corrupt");
}

/// Over-claimed counts inside a shortcut Rnet section must fail fast on
/// BOTH decode paths — the monolithic restore (`decode_rnet_section`)
/// and the lazy page-granular open (`skip_rnet_section`) — instead of
/// spinning a four-billion-iteration loop over a buffer that cannot
/// possibly hold that many records. Pins the fail-fast source/via
/// bounds the taint pass demanded.
#[test]
fn overclaimed_shortcut_counts_fail_fast_on_both_decode_paths() {
    let fw = RoadFramework::builder(simple::grid(4, 4, 1.0)).fanout(2).levels(2).build().unwrap();
    let bytes = fw.to_bytes();
    // The store is the last section: locate it by re-serializing it alone.
    let mut store = Vec::new();
    fw.shortcuts().serialize_into(&mut store);
    let store_at = bytes.len() - store.len();
    assert_eq!(&bytes[store_at..], &store[..], "shortcut store is not the tail section");
    let (sources_at, via_len_at) = shortcut_count_offsets(&bytes, store_at);

    for (what, at) in [("num_sources", sources_at), ("via_len", via_len_at)] {
        let mut bad = bytes.clone();
        bad[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = RoadFramework::from_bytes(&bad);
        assert!(err.is_err(), "monolithic restore accepted huge {what}");
        assert!(
            format!("{}", err.unwrap_err()).contains("exceeds buffer"),
            "huge {what} should fail the count-vs-remaining-bytes check"
        );
        assert!(road_core::PagedImage::open(bad).is_err(), "paged open accepted huge {what}");
    }
}

/// A longer randomized corruption soak for the `--include-ignored` CI
/// stress pass: every byte truncated, and random multi-byte stomps.
#[test]
#[ignore = "stress: exhaustive corruption sweep, run via --include-ignored"]
fn stress_exhaustive_corruption_sweep() {
    let fw = RoadFramework::builder(simple::grid(6, 6, 1.0)).fanout(2).levels(2).build().unwrap();
    let bytes = fw.to_bytes();
    for cut in 0..bytes.len() {
        assert!(RoadFramework::from_bytes(&bytes[..cut]).is_err(), "truncation at {cut} parsed");
    }
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..400 {
        let mut stomped = bytes.clone();
        for _ in 0..rng.random_range(1..6) {
            let at = rng.random_range(0..stomped.len());
            stomped[at] = rng.random_range(0..=255u32) as u8;
        }
        if let Ok(restored) = RoadFramework::from_bytes(&stomped) {
            let ad = AssociationDirectory::new(restored.hierarchy());
            let _ = restored.knn(&ad, &KnnQuery::new(NodeId(0), 1));
        }
        let _ = road_core::PagedImage::open(stomped);
    }
}

#[test]
fn paged_image_open_matches_monolithic_restore() {
    let fw = RoadFramework::builder(simple::grid(7, 7, 1.0)).fanout(4).levels(2).build().unwrap();
    let bytes = fw.to_bytes();
    let image = road_core::PagedImage::open(bytes.clone()).unwrap();
    assert_eq!(image.num_rnets(), fw.hierarchy().num_rnets());
    assert_eq!(image.network().num_nodes(), fw.network().num_nodes());
    assert_eq!(image.metric(), fw.metric());
    // Per-Rnet sections tile the shortcut payload.
    let section_total: usize = (0..image.num_rnets()).map(|r| image.rnet_section_bytes(r)).sum();
    assert!(section_total < bytes.len());
    // Materializing the lazy image equals the monolithic restore.
    let via_image = image.into_framework().unwrap();
    let via_bytes = RoadFramework::from_bytes(&bytes).unwrap();
    assert_eq!(via_image.shortcuts().num_shortcuts(), via_bytes.shortcuts().num_shortcuts());
    via_image.verify().unwrap();
}

#[test]
fn file_roundtrip() {
    let fw = RoadFramework::builder(simple::grid(6, 6, 1.0)).fanout(2).levels(2).build().unwrap();
    let dir = std::env::temp_dir().join("road_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("overlay.roadfw");
    road_core::persist::save_to(&fw, &path).unwrap();
    let restored = road_core::persist::load_from(&path).unwrap();
    restored.verify().unwrap();
    std::fs::remove_file(&path).ok();
    assert!(road_core::persist::load_from(dir.join("missing.roadfw")).is_err());
}

#[test]
fn custom_semantic_partition_builds_and_answers() {
    // The paper's "partitioning based on network semantics": a 2x2
    // quadrant split of a grid supplied by the caller, recursively (two
    // levels of fanout 2 => 4 leaves = the quadrants).
    let g = simple::grid(10, 10, 1.0);
    let cfg = road_core::RoadConfig {
        metric: WeightKind::Distance,
        hierarchy: road_core::HierarchyConfig { fanout: 2, levels: 2, ..Default::default() },
        ..Default::default()
    };
    let quadrant = |e: EdgeId| -> u32 {
        let (a, b) = g.edge(e).endpoints();
        let m = g.coord(a).midpoint(g.coord(b));
        let right = (m.x > 4.5) as u32;
        let top = (m.y > 4.5) as u32;
        top * 2 + right
    };
    let fw = RoadFramework::build_with_partition(g.clone(), cfg, quadrant).unwrap();
    fw.hierarchy().validate(fw.network()).unwrap();
    let ad = scatter(&fw, 10, 77);
    let q = KnnQuery::new(NodeId(0), 3);
    let got = fw.knn(&ad, &q).unwrap();
    let want = oracle_knn(&fw, &ad, &q);
    assert_eq!(got.hits.len(), want.len());
    for (x, y) in got.hits.iter().zip(&want) {
        assert!(x.distance.approx_eq(y.distance));
    }
    // Out-of-range assignments are rejected.
    let bad = RoadFramework::build_with_partition(
        g,
        road_core::RoadConfig {
            hierarchy: road_core::HierarchyConfig { fanout: 2, levels: 1, ..Default::default() },
            ..Default::default()
        },
        |_| 7,
    );
    assert!(bad.is_err());
}

/// ROADFW01 must capture *repaired* overlays: after a mixed maintenance
/// stream — weight changes, a new intersection wired in with new edges,
/// and an edge deletion — the serialized bytes must restore to a
/// framework whose shortcuts are exactly what a fresh rebuild over the
/// mutated network produces.
#[test]
fn roundtrip_after_mixed_maintenance_agrees_with_fresh_rebuild() {
    let mut fw =
        RoadFramework::builder(simple::grid(8, 8, 1.0)).fanout(4).levels(2).build().unwrap();
    let mut rng = StdRng::seed_from_u64(31);

    // Weight changes across several leaf Rnets.
    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    for _ in 0..12 {
        let e = edges[rng.random_range(0..edges.len())];
        fw.set_edge_weight(e, Weight::new(rng.random_range(0.1..8.0))).unwrap();
    }
    // Topology growth: a new intersection connected to two existing ones
    // (promotes borders and re-partitions shortcut chains).
    let n_new = fw.add_node(road_network::Point::new(3.4, 3.6));
    let w = Weight::new(0.7);
    fw.add_edge(NodeId(27), n_new, (w, w, Weight::ZERO)).unwrap();
    fw.add_edge(n_new, NodeId(36), (w, w, Weight::ZERO)).unwrap();
    // And a bypass between two previously unconnected intersections.
    if fw.network().edge_between(NodeId(0), NodeId(17)).is_none() {
        fw.add_edge(NodeId(0), NodeId(17), (w, w, Weight::ZERO)).unwrap();
    }
    // Shrinkage: delete an (object-free) edge.
    let victim = edges[40];
    fw.remove_edge(victim, &[]).unwrap();

    // The repaired overlay itself is sound...
    fw.verify().unwrap();
    // ...and survives the byte round-trip intact: the restored framework's
    // shortcuts agree with a fresh rebuild over the mutated network.
    let restored = RoadFramework::from_bytes(&fw.to_bytes()).unwrap();
    restored.verify().unwrap();
    assert_eq!(restored.network().num_nodes(), fw.network().num_nodes());
    assert_eq!(restored.network().num_edges(), fw.network().num_edges());
    assert_eq!(restored.shortcuts().num_shortcuts(), fw.shortcuts().num_shortcuts());
    assert!(restored.network().edge(victim).is_deleted());

    // Answers agree between the maintained original and the restored copy.
    let ad_orig = scatter(&fw, 10, 8);
    let ad_rest = scatter(&restored, 10, 8);
    for _ in 0..8 {
        let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 3);
        let a = fw.knn(&ad_orig, &q).unwrap();
        let b = restored.knn(&ad_rest, &q).unwrap();
        assert_eq!(a.hits.len(), b.hits.len());
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.object, y.object);
            assert!(x.distance.approx_eq(y.distance));
        }
    }
}

/// Byte-level round-trip of a *repaired* overlay through the lazy open
/// path: after mixed maintenance with exact (integer) weights, the image
/// opened via `PagedImage::open` and materialized must re-serialize to
/// the **identical** bytes, and its shortcut section must byte-match a
/// from-scratch contraction rebuild over the mutated network.
#[test]
fn repaired_overlay_roundtrips_byte_identical_via_paged_open() {
    let mut fw =
        RoadFramework::builder(simple::grid(8, 8, 1.0)).fanout(4).levels(2).build().unwrap();
    let mut rng = StdRng::seed_from_u64(0xB17E);

    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    for _ in 0..15 {
        let e = edges[rng.random_range(0..edges.len())];
        fw.set_edge_weight(e, Weight::new(rng.random_range(1..=16u32) as f64)).unwrap();
    }
    let w = Weight::new(3.0);
    if fw.network().edge_between(NodeId(5), NodeId(30)).is_none() {
        fw.add_edge(NodeId(5), NodeId(30), (w, w, Weight::ZERO)).unwrap();
    }
    fw.remove_edge(edges[33], &[]).unwrap();
    fw.verify().unwrap();

    let bytes = fw.to_bytes();
    let image = road_core::PagedImage::open(bytes.clone()).unwrap();
    let restored = image.into_framework().unwrap();
    assert_eq!(restored.to_bytes(), bytes, "paged open + re-serialize must be the identity");

    // The repaired store equals a fresh contraction build, byte for byte
    // (integer weights make f64 arithmetic exact, so the incremental
    // refreshes must land on the same bits).
    let fresh = road_core::ShortcutStore::build(
        fw.network(),
        fw.hierarchy(),
        fw.metric(),
        &Default::default(),
    );
    let mut repaired = Vec::new();
    fw.shortcuts().serialize_into(&mut repaired);
    let mut rebuilt = Vec::new();
    fresh.serialize_into(&mut rebuilt);
    assert_eq!(repaired, rebuilt, "repaired overlay diverged from a fresh rebuild");
}
