//! Property test pinning down the workspace-reuse contract: a single
//! `SearchWorkspace` carried across many randomized queries — different
//! query nodes, modes, filters, and even *different frameworks of
//! different sizes* (so most of its generation stamps are stale garbage
//! from earlier rounds) — must answer exactly like a fresh workspace every
//! time.

// Integration tests may unwrap freely; the workspace unwrap/expect denial
// targets library code (see clippy.toml for the unit-test exemption).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_network::generator::simple;
use road_network::graph::RoadNetwork;

fn build_world(
    net: RoadNetwork,
    objects: usize,
    seed: u64,
) -> (RoadFramework, AssociationDirectory) {
    let fw = RoadFramework::builder(net).fanout(2).levels(2).build().unwrap();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    let edges: Vec<_> = fw.network().edge_ids().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..objects {
        let e = edges[rng.random_range(0..edges.len())];
        let o = Object::new(
            ObjectId(i as u64),
            e,
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..3)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    (fw, ad)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reused_workspace_matches_fresh_results(
        n in 16usize..90,
        extra in 0usize..30,
        seed in 0u64..500,
    ) {
        // Two worlds of very different node counts: alternating between
        // them forces capacity growth and leaves large stale regions in
        // the reused workspace's stamp arrays.
        let (fw_big, ad_big) = build_world(simple::random_connected(n, extra, seed), 14, seed);
        let (fw_small, ad_small) = build_world(simple::chain(7, 1.0), 5, seed + 1);
        let worlds = [(&fw_big, &ad_big), (&fw_small, &ad_small)];

        let mut reused = SearchWorkspace::new();
        let mut reused_hits = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
        for step in 0..40 {
            let (fw, ad) = worlds[step % 2];
            let node = NodeId(rng.random_range(0..fw.network().num_nodes() as u32));
            let mut fresh = SearchWorkspace::new();
            let mut fresh_hits = Vec::new();
            if step % 3 == 0 {
                let radius = Weight::new(rng.random_range(0.5..25.0));
                let q = RangeQuery::new(node, radius);
                fw.range_with(ad, &q, &mut reused, &mut reused_hits).unwrap();
                fw.range_with(ad, &q, &mut fresh, &mut fresh_hits).unwrap();
            } else {
                let k = rng.random_range(1..8);
                let mut q = KnnQuery::new(node, k);
                if step % 2 == 1 {
                    q = q.with_filter(ObjectFilter::Category(CategoryId(step as u16 % 3)));
                }
                fw.knn_with(ad, &q, &mut reused, &mut reused_hits).unwrap();
                fw.knn_with(ad, &q, &mut fresh, &mut fresh_hits).unwrap();
            }
            prop_assert_eq!(
                &reused_hits, &fresh_hits,
                "step {} diverged (node {}, reuse #{})", step, node, reused.reuse_count()
            );
        }
        // The workspace really was reused throughout, sized for the
        // larger world.
        prop_assert_eq!(reused.reuse_count(), 40);
        prop_assert!(reused.node_capacity() >= fw_big.network().num_nodes());
    }
}
