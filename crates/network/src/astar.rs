//! A* search with a Euclidean admissible heuristic.
//!
//! The Euclidean-bound baseline (refs \[16\], \[19\] in the paper) verifies each
//! candidate object by computing its true network distance with the A*
//! algorithm (ref \[3\]). The heuristic is `h(n) = scale · euclid(n, goal)`
//! where `scale` must satisfy `scale · euclid(u,v) ≤ w(u,v)` on every edge
//! for admissibility/consistency; [`admissible_scale`] derives the largest
//! such factor from the network itself, which makes the heuristic valid for
//! *any* metric (it degenerates to `h = 0`, i.e. plain Dijkstra, for metrics
//! like toll that Euclidean distance cannot bound — exactly the weakness of
//! the Euclidean approach the paper calls out).

use crate::graph::{RoadNetwork, WeightKind};
use crate::ids::NodeId;
use crate::path::Path;
use crate::weight::Weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_PRED: u32 = u32::MAX;

/// Largest `scale` such that `scale * euclid(u,v) <= weight(u,v)` holds for
/// every live edge. Returns 0 when no positive scale is admissible.
pub fn admissible_scale(g: &RoadNetwork, kind: WeightKind) -> f64 {
    let mut scale = f64::INFINITY;
    for e in g.edge_ids() {
        let len = g.euclidean_length(e);
        if len <= 0.0 {
            continue; // zero-length embedding constrains nothing
        }
        let w = g.weight(e, kind).get();
        if !w.is_finite() {
            continue;
        }
        scale = scale.min(w / len);
    }
    if scale.is_finite() {
        scale
    } else {
        0.0
    }
}

/// Reusable A* state.
pub struct AStar {
    dist: Vec<Weight>,
    pred_node: Vec<u32>,
    pred_edge: Vec<u32>,
    stamp: Vec<u32>,
    round: u32,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
    settled_count: usize,
    /// heuristic factor; fixed per (network, metric) pair
    scale: f64,
}

impl AStar {
    /// Creates state for `g`, deriving the heuristic scale from the network.
    pub fn for_network(g: &RoadNetwork, kind: WeightKind) -> Self {
        AStar {
            dist: vec![Weight::INFINITY; g.num_nodes()],
            pred_node: vec![NO_PRED; g.num_nodes()],
            pred_edge: vec![NO_PRED; g.num_nodes()],
            stamp: vec![0; g.num_nodes()],
            round: 0,
            heap: BinaryHeap::new(),
            settled_count: 0,
            scale: admissible_scale(g, kind),
        }
    }

    /// The heuristic scale in use.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Re-derives the scale after edge-weight changes; a decreased weight
    /// can invalidate the previous scale.
    pub fn refresh_scale(&mut self, g: &RoadNetwork, kind: WeightKind) {
        self.scale = admissible_scale(g, kind);
    }

    /// Number of nodes settled in the last query — the baseline's "network
    /// traversal" cost driver.
    pub fn settled(&self) -> usize {
        self.settled_count
    }

    /// Shortest network distance `||src, dst||`, or `None` if disconnected.
    /// `visit` is called once per settled node (for I/O accounting).
    pub fn one_to_one_visit(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        dst: NodeId,
        mut visit: impl FnMut(NodeId),
    ) -> Option<Weight> {
        if g.num_nodes() > self.dist.len() {
            self.dist.resize(g.num_nodes(), Weight::INFINITY);
            self.pred_node.resize(g.num_nodes(), NO_PRED);
            self.pred_edge.resize(g.num_nodes(), NO_PRED);
            self.stamp.resize(g.num_nodes(), 0);
        }
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            self.stamp.fill(0);
            self.round = 1;
        }
        self.heap.clear();
        self.settled_count = 0;

        let goal = g.coord(dst);
        let h = |n: NodeId| Weight::new(self.scale * g.coord(n).distance(goal));

        self.dist[src.index()] = Weight::ZERO;
        self.pred_node[src.index()] = NO_PRED;
        self.stamp[src.index()] = self.round;
        self.heap.push(Reverse((h(src), src.0)));

        while let Some(Reverse((f, u))) = self.heap.pop() {
            let ui = u as usize;
            let du = if self.stamp[ui] == self.round { self.dist[ui] } else { Weight::INFINITY };
            // Stale check against the f-value this label was pushed with.
            if f > du + h(NodeId(u)) {
                continue;
            }
            self.settled_count += 1;
            visit(NodeId(u));
            if u == dst.0 {
                return Some(du);
            }
            for (e, v) in g.neighbors(NodeId(u)) {
                let w = g.weight(e, kind);
                if w.is_infinite() {
                    continue;
                }
                let nd = du + w;
                let vi = v.index();
                let cur =
                    if self.stamp[vi] == self.round { self.dist[vi] } else { Weight::INFINITY };
                if nd < cur {
                    self.dist[vi] = nd;
                    self.pred_node[vi] = u;
                    self.pred_edge[vi] = e.0;
                    self.stamp[vi] = self.round;
                    self.heap.push(Reverse((nd + h(v), v.0)));
                }
            }
        }
        None
    }

    /// Shortest network distance without a visit callback.
    pub fn one_to_one(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Weight> {
        self.one_to_one_visit(g, kind, src, dst, |_| {})
    }

    /// Shortest path, reconstructed from the last run's predecessor links.
    pub fn shortest_path(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Path> {
        let total = self.one_to_one(g, kind, src, dst)?;
        Path::from_predecessors(src, dst, total, |n| {
            let i = n.index();
            if self.stamp[i] == self.round && self.pred_node[i] != NO_PRED {
                Some((NodeId(self.pred_node[i]), crate::ids::EdgeId(self.pred_edge[i])))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::generator::simple;
    use crate::geometry::Point;
    use crate::graph::NetworkBuilder;

    #[test]
    fn admissible_scale_is_one_for_euclidean_weights() {
        let g = simple::grid(4, 4, 1.0);
        let s = admissible_scale(&g, WeightKind::Distance);
        assert!((s - 1.0).abs() < 1e-9, "scale = {s}");
    }

    #[test]
    fn astar_matches_dijkstra_on_grids() {
        let g = simple::grid(6, 5, 1.0);
        let mut astar = AStar::for_network(&g, WeightKind::Distance);
        for (a, b) in [(0u32, 29u32), (3, 17), (5, 24), (0, 0)] {
            let want =
                dijkstra::shortest_path_weight(&g, WeightKind::Distance, NodeId(a), NodeId(b));
            let got = astar.one_to_one(&g, WeightKind::Distance, NodeId(a), NodeId(b));
            assert_eq!(got, want, "{a} -> {b}");
        }
    }

    #[test]
    fn astar_settles_fewer_nodes_than_dijkstra() {
        let g = simple::grid(20, 20, 1.0);
        let src = NodeId(0);
        let dst = NodeId(19); // far corner of the first row
        let mut astar = AStar::for_network(&g, WeightKind::Distance);
        astar.one_to_one(&g, WeightKind::Distance, src, dst).unwrap();
        let mut dij = dijkstra::Dijkstra::for_network(&g);
        dij.one_to_one(&g, WeightKind::Distance, src, dst).unwrap();
        assert!(
            astar.settled() < dij.settled(),
            "A* settled {} vs Dijkstra {}",
            astar.settled(),
            dij.settled()
        );
    }

    #[test]
    fn astar_path_validates() {
        let g = simple::grid(5, 5, 1.0);
        let mut astar = AStar::for_network(&g, WeightKind::Distance);
        let p = astar.shortest_path(&g, WeightKind::Distance, NodeId(0), NodeId(24)).unwrap();
        assert!(p.validate(&g, WeightKind::Distance));
        assert_eq!(p.total(), Weight::new(8.0));
    }

    #[test]
    fn zero_scale_for_toll_metric_still_correct() {
        // Toll weights bear no relation to geometry: scale becomes 0 and A*
        // degenerates to Dijkstra but stays correct.
        let mut b = NetworkBuilder::default();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(10.0, 0.0));
        let n2 = b.add_node(Point::new(5.0, 5.0));
        b.add_edge_full(n0, n1, Weight::new(10.0), Weight::new(1.0), Weight::new(5.0)).unwrap();
        // A free segment with positive Euclidean length forces scale = 0.
        b.add_edge_full(n0, n2, Weight::new(8.0), Weight::new(1.0), Weight::ZERO).unwrap();
        b.add_edge_full(n2, n1, Weight::new(8.0), Weight::new(1.0), Weight::new(2.0)).unwrap();
        let g = b.build();
        let mut astar = AStar::for_network(&g, WeightKind::Toll);
        assert_eq!(astar.scale(), 0.0);
        assert_eq!(astar.one_to_one(&g, WeightKind::Toll, n0, n1), Some(Weight::new(2.0)));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = NetworkBuilder::default();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let g = b.build();
        let mut astar = AStar::for_network(&g, WeightKind::Distance);
        assert_eq!(astar.one_to_one(&g, WeightKind::Distance, a, c), None);
    }
}
