//! Node contraction with bounded witness search.
//!
//! The shortcut builder needs, per Rnet, the border-to-border distance
//! structure of the Rnet's local graph.  The legacy approach ran one full
//! Dijkstra per border over the whole local graph.  This module implements
//! the standard alternative from dynamic fastest-path systems (Nannicini et
//! al.; Sanders & Schultes): *contract* the interior nodes one at a time and
//! keep the border nodes as the sealed remainder.
//!
//! Contracting a node `x` removes it from the overlay graph; for every pair
//! of neighbours `(u, v)` the two-hop path `u -> x -> v` is replaced by a
//! direct arc of the same weight **unless** a witness search from `u` (a
//! bounded Dijkstra in the overlay without `x`) finds a path of weight `<=`
//! the proposal — an equal-weight witness suppresses the arc.  When every
//! interior node has been contracted, the arcs among the sealed nodes form
//! the *remainder graph*: a small graph on the borders alone that preserves
//! all pairwise border distances of the original local graph.
//!
//! The witness search is bounded (settle limit + weight bound), which can
//! only make the remainder *denser*, never wrong: a missed witness adds a
//! redundant arc whose weight still equals some real path length, so
//! distances are preserved for any bound — including a settle limit of zero.
//!
//! The overlay requires a symmetric arc set (if `u -> v` exists so does
//! `v -> u`; weights may differ per direction).  Local Rnet graphs satisfy
//! this because road edges are undirected and border-pair keeps are
//! direction-symmetric.  Shortcut arcs created during contraction preserve
//! the invariant: a pair `(u, v)` either receives both directed arcs or
//! neither.
//!
//! Everything here is scratch-reusable: one [`Contractor`] serves every Rnet
//! of a build, and the per-node contraction loop performs no heap
//! allocation (enforced by the `hot-path` lint fence below).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::{CsrBuilder, CsrGraph};
use crate::weight::Weight;

/// The order in which interior nodes are contracted.
///
/// The remainder graph itself may differ between orders (bounded witness
/// searches see different overlays), but it always preserves pairwise
/// sealed-node distances, so everything derived from those distances — in
/// particular the shortcut store — is order-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContractionOrder {
    /// Lazily contract a node of (currently) minimum overlay degree,
    /// ties broken deterministically.  Keeps fill-in small; the default.
    #[default]
    MinDegree,
    /// Contract in ascending node-id order.  Used by differential tests to
    /// demonstrate order independence of the final store.
    InputOrder,
    /// Contract in descending node-id order.  Test-oriented, like
    /// [`ContractionOrder::InputOrder`].
    ReverseInput,
}

/// One directed overlay arc.
#[derive(Debug, Clone, Copy)]
struct OverlayArc {
    to: u32,
    w: Weight,
}

/// Reusable contraction state: the mutable overlay adjacency, the lazy
/// priority queue, and the witness-search scratch.
#[derive(Debug, Default)]
pub struct Contractor {
    /// Overlay out-arcs per node; symmetric as a neighbour *set*.
    adj: Vec<Vec<OverlayArc>>,
    /// Monotone bucket queue for [`ContractionOrder::MinDegree`]:
    /// `buckets[d]` holds interior nodes whose overlay degree was `d` when
    /// they were last filed.
    buckets: Vec<Vec<u32>>,
    /// Out-neighbour snapshot of the node being contracted.
    nbrs: Vec<OverlayArc>,
    /// `in_w[k]` = weight of the arc `nbrs[k].to -> x` (the incoming side).
    in_w: Vec<Weight>,
    /// `deg x deg` matrix of witness verdicts for the current contraction.
    witnessed: Vec<bool>,
    // Generation-stamped witness Dijkstra scratch.
    wdist: Vec<Weight>,
    wstamp: Vec<u32>,
    wround: u32,
    wheap: BinaryHeap<Reverse<(Weight, u32)>>,
    /// Target stamps: `wtgt[n] == wround` marks `n` as an out-neighbour the
    /// current witness search still has to settle (early-exit bookkeeping).
    wtgt: Vec<u32>,
}

/// Insert or min-merge the directed arc `-> to` into `list`.
#[inline]
fn min_merge(list: &mut Vec<OverlayArc>, to: u32, w: Weight) {
    for a in list.iter_mut() {
        if a.to == to {
            if w < a.w {
                a.w = w;
            }
            return;
        }
    }
    list.push(OverlayArc { to, w });
}

impl Contractor {
    /// Contract every node with id `>= sealed` of the local graph `g`, in
    /// the given `order`, and emit the remainder arcs among the sealed nodes
    /// `0..sealed` into `out` (label `0`).
    ///
    /// `settle_limit` bounds each witness search (number of settled nodes);
    /// smaller limits trade remainder density for speed, never correctness.
    /// Self-loops and infinite-weight (closed) arcs of `g` are ignored.
    pub fn contract(
        &mut self,
        g: &CsrGraph,
        sealed: u32,
        order: ContractionOrder,
        settle_limit: usize,
        out: &mut CsrBuilder,
    ) {
        let n = g.num_nodes();

        // ---- Seed the overlay from the local CSR (allocations allowed). --
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        for list in self.adj.iter_mut().take(n) {
            list.clear();
        }
        for u in 0..n as u32 {
            for (v, w, _) in g.out(u) {
                if v == u || (v as usize) >= n || w.is_infinite() {
                    continue;
                }
                min_merge(&mut self.adj[u as usize], v, w);
            }
        }
        if settle_limit > 0 {
            // Witness-search scratch is only touched by `run_witness`; a
            // zero budget never gets there, so skip the per-call memsets.
            self.wdist.resize(n, Weight::INFINITY);
            self.wstamp.clear();
            self.wstamp.resize(n, 0);
            self.wtgt.clear();
            self.wtgt.resize(n, 0);
            self.wround = 0;
        }

        match order {
            ContractionOrder::InputOrder => {
                for x in sealed..n as u32 {
                    self.contract_node(x, settle_limit);
                }
            }
            ContractionOrder::ReverseInput => {
                for x in (sealed..n as u32).rev() {
                    self.contract_node(x, settle_limit);
                }
            }
            ContractionOrder::MinDegree => self.contract_min_degree(sealed, n, settle_limit),
        }

        // Remainder: every surviving arc runs between sealed nodes.
        for u in 0..sealed.min(n as u32) {
            for a in &self.adj[u as usize] {
                out.push(u, a.to, a.w, 0);
            }
        }
    }

    /// Min-degree contraction driven by a monotone bucket queue:
    /// `buckets[d]` holds nodes last filed at overlay degree `d`, each
    /// interior node holding exactly one entry.  A popped node whose current
    /// degree no longer matches its bucket is re-filed (the cursor backs up
    /// when the degree dropped).  Degree keys are tiny, so bucket scans beat
    /// the churn of a lazy binary heap.
    fn contract_min_degree(&mut self, sealed: u32, n: usize, settle_limit: usize) {
        if self.buckets.len() < n + 1 {
            self.buckets.resize_with(n + 1, Vec::new);
        }
        for b in self.buckets.iter_mut().take(n + 1) {
            b.clear();
        }
        for x in sealed..n as u32 {
            let d = self.adj[x as usize].len();
            self.buckets[d].push(x);
        }
        // roadlint: hot-path (contraction order: bucket re-files only)
        let mut d = 0usize;
        while d <= n {
            let Some(x) = self.buckets[d].pop() else {
                d += 1;
                continue;
            };
            let cur = self.adj[x as usize].len();
            if cur != d {
                self.buckets[cur].push(x);
                if cur < d {
                    d = cur;
                }
                continue;
            }
            self.contract_node(x, settle_limit);
        }
        // roadlint: end hot-path
    }

    /// Contracts the single interior node `x`: detach it from the overlay,
    /// decide witnesses for every neighbour pair, and min-merge the
    /// surviving two-hop arcs.
    fn contract_node(&mut self, x: u32, settle_limit: usize) {
        let xi = x as usize;
        // roadlint: hot-path (contraction: no per-node heap allocation)
        // Detach x: snapshot its out-arcs, then erase x from every
        // neighbour's list while capturing the incoming weights.  After
        // this block no arc touches x, so witness searches skip it for
        // free.  (Detach must run even for degree-0/1 nodes — a dangling
        // arc into x from a sealed node must not survive into the
        // remainder.)
        self.nbrs.clear();
        self.nbrs.extend_from_slice(&self.adj[xi]);
        self.adj[xi].clear();
        self.in_w.clear();
        for k in 0..self.nbrs.len() {
            let u = self.nbrs[k].to as usize;
            let mut win = Weight::INFINITY;
            let list = &mut self.adj[u];
            for i in 0..list.len() {
                if list[i].to == x {
                    win = list[i].w;
                    list.swap_remove(i);
                    break; // min_merge keeps arcs unique: at most one hit
                }
            }
            self.in_w.push(win);
        }

        // Degree-0/1 nodes have no neighbour pairs: nothing to shortcut.
        let deg = self.nbrs.len();
        if deg < 2 {
            return;
        }

        // Witness pass: one bounded Dijkstra per in-neighbour u decides,
        // for every out-neighbour v, whether u -> x -> v has a witness
        // of weight <= the proposal (equal weight suppresses the arc).
        // A settle limit of zero cannot settle past any search's source,
        // so the whole pass is skipped: every verdict stays "no witness"
        // and the verdict matrix is never touched.
        let witnessing = settle_limit > 0;
        if witnessing {
            self.witnessed.clear();
            self.witnessed.resize(deg * deg, false);
            for ui in 0..deg {
                let win = self.in_w[ui];
                if win.is_infinite() {
                    continue;
                }
                let mut bound = Weight::ZERO;
                for (vi, nb) in self.nbrs.iter().enumerate() {
                    if vi != ui && nb.w.is_finite() {
                        bound = bound.max(win + nb.w);
                    }
                }
                if bound == Weight::ZERO {
                    continue; // no finite proposal from u: nothing to refute
                }
                self.run_witness(ui, bound, settle_limit);
                for vi in 0..deg {
                    if vi == ui || self.nbrs[vi].w.is_infinite() {
                        continue;
                    }
                    let proposal = win + self.nbrs[vi].w;
                    let v = self.nbrs[vi].to;
                    if self.witness_dist(v) <= proposal {
                        self.witnessed[ui * deg + vi] = true;
                    }
                }
            }
        }

        // Shortcut pass, per unordered pair so the overlay stays
        // symmetric as a neighbour set: both directed arcs or neither.
        for ui in 0..deg {
            for vi in ui + 1..deg {
                let puv = self.in_w[ui] + self.nbrs[vi].w; // u -> x -> v
                let pvu = self.in_w[vi] + self.nbrs[ui].w; // v -> x -> u
                let need_uv = puv.is_finite() && !(witnessing && self.witnessed[ui * deg + vi]);
                let need_vu = pvu.is_finite() && !(witnessing && self.witnessed[vi * deg + ui]);
                if need_uv || need_vu {
                    let u = self.nbrs[ui].to;
                    let v = self.nbrs[vi].to;
                    if puv.is_finite() {
                        min_merge(&mut self.adj[u as usize], v, puv);
                    }
                    if pvu.is_finite() {
                        min_merge(&mut self.adj[v as usize], u, pvu);
                    }
                }
            }
        }
        // roadlint: end hot-path
    }

    /// Bounded witness Dijkstra from neighbour `ui` of the node being
    /// contracted, over the current overlay.  Settles at most `settle_limit`
    /// nodes, never expands labels beyond `bound`, and — the decisive cut —
    /// stops as soon as every out-neighbour target is settled: a settled
    /// label is final, so any further relaxation provably cannot change a
    /// single witness verdict.  Results are read back via
    /// [`witness_dist`](Self::witness_dist).
    fn run_witness(&mut self, ui: usize, bound: Weight, settle_limit: usize) {
        self.wround = self.wround.wrapping_add(1);
        if self.wround == 0 {
            // Stamp wrap-around: invalidate everything explicitly.
            self.wstamp.iter_mut().for_each(|s| *s = 0);
            self.wtgt.iter_mut().for_each(|s| *s = 0);
            self.wround = 1;
        }
        self.wheap.clear();
        // roadlint: hot-path (witness search: generation-stamped, allocation-free)
        let Contractor { adj, nbrs, wdist, wstamp, wround, wheap, wtgt, .. } = self;
        let round = *wround;
        let mut remaining = 0usize;
        for (vi, nb) in nbrs.iter().enumerate() {
            if vi != ui && nb.w.is_finite() {
                wtgt[nb.to as usize] = round;
                remaining += 1;
            }
        }
        let src = nbrs[ui].to;
        wdist[src as usize] = Weight::ZERO;
        wstamp[src as usize] = round;
        wheap.push(Reverse((Weight::ZERO, src)));
        let mut settled = 0usize;
        while let Some(Reverse((d, u))) = wheap.pop() {
            if wstamp[u as usize] == round && d > wdist[u as usize] {
                continue; // stale entry
            }
            if d > bound || settled >= settle_limit {
                break;
            }
            settled += 1;
            if wtgt[u as usize] == round {
                remaining -= 1;
                if remaining == 0 {
                    break; // every target settled: all verdicts are decided
                }
            }
            for a in &adj[u as usize] {
                let nd = d + a.w;
                if nd > bound {
                    continue;
                }
                let ti = a.to as usize;
                if wstamp[ti] != round || nd < wdist[ti] {
                    wdist[ti] = nd;
                    wstamp[ti] = round;
                    wheap.push(Reverse((nd, a.to)));
                }
            }
        }
        // roadlint: end hot-path
    }

    /// Distance label of `n` from the most recent witness search
    /// (`Weight::INFINITY` when unreached).
    #[inline]
    fn witness_dist(&self, n: u32) -> Weight {
        if self.wstamp[n as usize] == self.wround {
            self.wdist[n as usize]
        } else {
            Weight::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    /// Build a symmetric local CSR from undirected (a, b, weight) triples.
    fn csr(n: usize, edges: &[(u32, u32, f64)]) -> CsrGraph {
        let mut b = CsrBuilder::default();
        for &(a, bb, wt) in edges {
            b.push(a, bb, w(wt), 0);
            b.push(bb, a, w(wt), 0);
        }
        let mut g = CsrGraph::default();
        b.finish_into(n, &mut g);
        g
    }

    fn remainder(g: &CsrGraph, sealed: u32, order: ContractionOrder) -> Vec<(u32, u32, f64)> {
        let mut c = Contractor::default();
        let mut b = CsrBuilder::default();
        c.contract(g, sealed, order, usize::MAX, &mut b);
        let mut out = CsrGraph::default();
        b.finish_into(sealed as usize, &mut out);
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        for u in 0..sealed {
            for (v, wt, _) in out.out(u) {
                arcs.push((u, v, wt.get()));
            }
        }
        arcs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        arcs
    }

    #[test]
    fn equal_weight_witness_suppresses_the_shortcut() {
        // x (node 3) joins borders 0 and 1 at weight 1 + 1 = 2; the detour
        // through border 2 is exactly 2 as well.  The tie must suppress the
        // contraction shortcut: only the original four arcs survive.
        let g = csr(4, &[(0, 3, 1.0), (3, 1, 1.0), (0, 2, 1.0), (2, 1, 1.0)]);
        let arcs = remainder(&g, 3, ContractionOrder::InputOrder);
        assert_eq!(
            arcs,
            vec![(0, 2, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 1, 1.0)],
            "tie witness must not emit 0 <-> 1"
        );
    }

    #[test]
    fn longer_witness_keeps_the_shortcut() {
        // Same shape, but the detour costs 2.5 > 2: the shortcut is needed.
        let g = csr(4, &[(0, 3, 1.0), (3, 1, 1.0), (0, 2, 1.25), (2, 1, 1.25)]);
        let arcs = remainder(&g, 3, ContractionOrder::InputOrder);
        assert!(arcs.contains(&(0, 1, 2.0)) && arcs.contains(&(1, 0, 2.0)));
    }

    #[test]
    fn disconnected_seal_pairs_get_no_arc() {
        // Two components: borders 0-1 joined via interior 4; border 2 joined
        // to border 3 directly.  No cross-component arcs may appear.
        let g = csr(5, &[(0, 4, 1.0), (4, 1, 1.0), (2, 3, 7.0)]);
        let arcs = remainder(&g, 4, ContractionOrder::MinDegree);
        assert_eq!(
            arcs,
            vec![(0, 1, 2.0), (1, 0, 2.0), (2, 3, 7.0), (3, 2, 7.0)],
            "disconnected pairs must be absent, not infinite"
        );
    }

    #[test]
    fn infinite_weight_arcs_are_treated_as_closed() {
        // The only route 0 -> 1 runs over a closed (infinite) edge: after
        // contraction the sealed nodes are disconnected.
        let mut b = CsrBuilder::default();
        b.push(0, 2, Weight::INFINITY, 0);
        b.push(2, 0, Weight::INFINITY, 0);
        b.push(2, 1, w(1.0), 0);
        b.push(1, 2, w(1.0), 0);
        let mut g = CsrGraph::default();
        b.finish_into(3, &mut g);
        let mut c = Contractor::default();
        let mut out = CsrBuilder::default();
        c.contract(&g, 2, ContractionOrder::MinDegree, usize::MAX, &mut out);
        assert!(out.is_empty(), "closed edges must not leak into the remainder");
    }

    #[test]
    fn zero_settle_limit_still_preserves_distances() {
        // With the witness search disabled every two-hop pair becomes an
        // arc; distances must still be exact (denser, never wrong).
        let g = csr(5, &[(0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (4, 1, 1.0)]);
        let mut c = Contractor::default();
        let mut b = CsrBuilder::default();
        c.contract(&g, 2, ContractionOrder::MinDegree, 0, &mut b);
        let mut out = CsrGraph::default();
        b.finish_into(2, &mut out);
        let direct: Vec<_> = out.out(0).filter(|&(v, _, _)| v == 1).collect();
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0].1, w(4.0));
    }

    #[test]
    fn remainder_distances_match_for_every_order_on_a_grid() {
        // 4x4 grid with irregular integer weights; the 4 corner nodes are
        // sealed.  All-pairs corner distances from the remainder must agree
        // across contraction orders (the arc sets themselves may differ).
        let id = |r: u32, c: u32| r * 4 + c;
        let mut edges = Vec::new();
        let mut wt = 1.0;
        for r in 0..4u32 {
            for c in 0..4u32 {
                if c + 1 < 4 {
                    edges.push((id(r, c), id(r, c + 1), wt));
                    wt = if wt >= 5.0 { 1.0 } else { wt + 1.0 };
                }
                if r + 1 < 4 {
                    edges.push((id(r, c), id(r + 1, c), wt));
                    wt = if wt >= 5.0 { 1.0 } else { wt + 1.0 };
                }
            }
        }
        // Remap so the corners are ids 0..4 and interiors follow.
        let corners = [id(0, 0), id(0, 3), id(3, 0), id(3, 3)];
        let mut remap = [u32::MAX; 16];
        for (i, &c) in corners.iter().enumerate() {
            remap[c as usize] = i as u32;
        }
        let mut next = 4u32;
        for slot in &mut remap {
            if *slot == u32::MAX {
                *slot = next;
                next += 1;
            }
        }
        let remapped: Vec<(u32, u32, f64)> =
            edges.iter().map(|&(a, b, wt)| (remap[a as usize], remap[b as usize], wt)).collect();
        let g = csr(16, &remapped);

        let dist_matrix = |arcs: &[(u32, u32, f64)]| -> Vec<f64> {
            // Tiny Floyd-Warshall over the 4 sealed nodes.
            let mut d = vec![f64::INFINITY; 16];
            for i in 0..4 {
                d[i * 4 + i] = 0.0;
            }
            for &(u, v, wt) in arcs {
                let slot = &mut d[(u * 4 + v) as usize];
                *slot = slot.min(wt);
            }
            for k in 0..4 {
                for i in 0..4 {
                    for j in 0..4 {
                        let via = d[i * 4 + k] + d[k * 4 + j];
                        if via < d[i * 4 + j] {
                            d[i * 4 + j] = via;
                        }
                    }
                }
            }
            d
        };

        let base = dist_matrix(&remainder(&g, 4, ContractionOrder::MinDegree));
        for order in [ContractionOrder::InputOrder, ContractionOrder::ReverseInput] {
            assert_eq!(dist_matrix(&remainder(&g, 4, order)), base, "order {order:?}");
        }
        // And against the truth: Dijkstra over the full grid from corner 0.
        assert!(base.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn zero_interior_and_isolated_seal_nodes_are_noops() {
        // sealed == n: nothing to contract, remainder = input arcs.
        let g = csr(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let mut c = Contractor::default();
        let mut b = CsrBuilder::default();
        c.contract(&g, 3, ContractionOrder::MinDegree, usize::MAX, &mut b);
        assert_eq!(b.len(), 4);

        // Isolated interior (degree 0) contracts without effect.
        let g = csr(4, &[(0, 1, 2.0)]);
        let mut b2 = CsrBuilder::default();
        c.contract(&g, 2, ContractionOrder::MinDegree, usize::MAX, &mut b2);
        assert_eq!(b2.len(), 2);
    }
}
