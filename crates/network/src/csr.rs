//! Flat CSR (compressed sparse row) adjacency arenas.
//!
//! The shortcut builder and the contraction pass (see [`crate::contractor`])
//! work over *local* graphs — an Rnet's borders and interiors renumbered to a
//! dense `0..n` id space.  The legacy representation was a pointer-rich
//! `Vec<Vec<LocalEdge>>`; this module replaces it with a single contiguous
//! arena: arc targets, weights and labels live in three parallel flat vectors
//! indexed by a per-node offset table.  That layout is what every contraction
//! hierarchy implementation converges on (Nannicini et al., *Fast paths in
//! large-scale dynamic road networks*): one cache line holds several arcs, a
//! rebuild is three `memcpy`-shaped passes, and there is no per-node heap
//! allocation at all.
//!
//! [`CsrBuilder`] accepts arcs in any order and finalises them with a stable
//! counting sort, so arcs of one source node keep their insertion order — the
//! shortcut builder relies on that to stay byte-compatible with the legacy
//! adjacency-list sweep.  Both the builder and the graph are designed for
//! reuse: `finish_into` writes into a caller-owned [`CsrGraph`], and all
//! scratch vectors are recycled across Rnets.

// roadlint: serving-path

use crate::weight::Weight;

/// A frozen CSR adjacency arena over dense node ids `0..num_nodes`.
///
/// Layout (all arcs of node `n` are contiguous):
///
/// ```text
/// offsets: [ 0 .. n+1 ]          offsets[n] .. offsets[n+1] = arc range of n
/// targets: [ u32; num_arcs ]     head node of each arc
/// weights: [ Weight; num_arcs ]  arc weight (f64 newtype)
/// labels:  [ u32; num_arcs ]     caller-defined tag (edge id at leaves)
/// ```
#[derive(Debug, Default, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<Weight>,
    labels: Vec<u32>,
}

impl CsrGraph {
    /// Number of nodes the arena was finalised for.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `n` (0 for out-of-range ids).
    #[inline]
    pub fn degree(&self, n: u32) -> usize {
        let lo = self.offsets.get(n as usize).copied().unwrap_or(0) as usize;
        let hi = self.offsets.get(n as usize + 1).copied().unwrap_or(0) as usize;
        hi.saturating_sub(lo)
    }

    /// Iterate the arcs of `n` as `(target, weight, label)` in insertion
    /// order.  Out-of-range ids yield an empty iterator.
    #[inline]
    pub fn out(&self, n: u32) -> impl Iterator<Item = (u32, Weight, u32)> + '_ {
        let lo = self.offsets.get(n as usize).copied().unwrap_or(0) as usize;
        let hi = self.offsets.get(n as usize + 1).copied().unwrap_or(lo as u32) as usize;
        let lo = lo.min(self.targets.len());
        let hi = hi.clamp(lo, self.targets.len());
        self.targets
            .get(lo..hi)
            .unwrap_or(&[])
            .iter()
            .zip(self.weights.get(lo..hi).unwrap_or(&[]))
            .zip(self.labels.get(lo..hi).unwrap_or(&[]))
            .map(|((&t, &w), &l)| (t, w, l))
    }

    /// Drop all nodes and arcs, keeping capacity.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.targets.clear();
        self.weights.clear();
        self.labels.clear();
    }
}

/// Arc accumulator that freezes into a [`CsrGraph`] with a stable counting
/// sort: arcs may be pushed in any source order, and arcs sharing a source
/// keep their relative push order.
#[derive(Debug, Default)]
pub struct CsrBuilder {
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    ws: Vec<Weight>,
    labels: Vec<u32>,
    cursor: Vec<u32>,
}

impl CsrBuilder {
    /// Forget all pushed arcs, keeping capacity.
    pub fn clear(&mut self) {
        self.srcs.clear();
        self.dsts.clear();
        self.ws.clear();
        self.labels.clear();
    }

    /// Number of arcs pushed since the last [`clear`](Self::clear).
    #[inline]
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True when no arcs have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Record one directed arc `from -> to`.
    #[inline]
    pub fn push(&mut self, from: u32, to: u32, weight: Weight, label: u32) {
        self.srcs.push(from);
        self.dsts.push(to);
        self.ws.push(weight);
        self.labels.push(label);
    }

    /// Iterate the raw pushed arcs as `(from, to, weight)` in push order,
    /// without freezing them into a [`CsrGraph`].  Consumers that only fold
    /// over the arc set (the shortcut builder's border-distance closure)
    /// skip the counting sort entirely.
    #[inline]
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32, Weight)> + '_ {
        self.srcs.iter().zip(&self.dsts).zip(&self.ws).map(|((&s, &d), &w)| (s, d, w))
    }

    /// Freeze the pushed arcs into `out` as a CSR arena over `num_nodes`
    /// dense ids.  Arcs whose source id is `>= num_nodes` are dropped.
    /// Stable: arcs of one source keep their push order.
    // roadlint: allow(panic-fn) reason="counting-sort cursors are derived from the builder's own arc vectors; every index is bounded by the prefix sums computed two passes above"
    pub fn finish_into(&mut self, num_nodes: usize, out: &mut CsrGraph) {
        out.clear();
        self.cursor.clear();
        self.cursor.resize(num_nodes + 1, 0);

        // Pass 1: out-degree histogram (shifted by one for the prefix sum).
        for &s in &self.srcs {
            if (s as usize) < num_nodes {
                self.cursor[s as usize + 1] += 1;
            }
        }
        // Pass 2: exclusive prefix sum = final offsets.
        for i in 1..=num_nodes {
            self.cursor[i] += self.cursor[i - 1];
        }
        out.offsets.extend_from_slice(&self.cursor);
        let total = self.cursor[num_nodes] as usize;
        out.targets.resize(total, 0);
        out.weights.resize(total, Weight::ZERO);
        out.labels.resize(total, 0);

        // Pass 3: stable scatter; cursor[s] walks s's arc range forward.
        for i in 0..self.srcs.len() {
            let s = self.srcs[i] as usize;
            if s >= num_nodes {
                continue;
            }
            let slot = self.cursor[s] as usize;
            out.targets[slot] = self.dsts[i];
            out.weights[slot] = self.ws[i];
            out.labels[slot] = self.labels[i];
            self.cursor[s] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> Weight {
        Weight::new(x)
    }

    #[test]
    fn finish_preserves_per_source_push_order() {
        let mut b = CsrBuilder::default();
        // Interleave sources; per-source order must survive the sort.
        b.push(2, 0, w(5.0), 50);
        b.push(0, 1, w(1.0), 10);
        b.push(2, 1, w(6.0), 60);
        b.push(0, 2, w(2.0), 20);
        b.push(2, 2, w(7.0), 70);
        let mut g = CsrGraph::default();
        b.finish_into(3, &mut g);

        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 5);
        let n0: Vec<_> = g.out(0).collect();
        assert_eq!(n0, vec![(1, w(1.0), 10), (2, w(2.0), 20)]);
        assert_eq!(g.degree(1), 0);
        assert!(g.out(1).next().is_none());
        let n2: Vec<_> = g.out(2).collect();
        assert_eq!(n2, vec![(0, w(5.0), 50), (1, w(6.0), 60), (2, w(7.0), 70)]);
    }

    #[test]
    fn out_of_range_queries_are_empty_not_panics() {
        let mut b = CsrBuilder::default();
        b.push(0, 1, w(1.0), 0);
        b.push(9, 1, w(1.0), 0); // source beyond num_nodes: dropped
        let mut g = CsrGraph::default();
        b.finish_into(2, &mut g);
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.degree(7), 0);
        assert!(g.out(7).next().is_none());
        assert!(CsrGraph::default().out(0).next().is_none());
    }

    #[test]
    fn builder_and_graph_are_reusable() {
        let mut b = CsrBuilder::default();
        let mut g = CsrGraph::default();
        b.push(1, 0, w(3.0), 1);
        b.finish_into(2, &mut g);
        assert_eq!(g.num_arcs(), 1);

        b.clear();
        b.push(0, 1, w(4.0), 2);
        b.push(0, 2, w(5.0), 3);
        b.finish_into(3, &mut g);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 2);
        let n0: Vec<_> = g.out(0).collect();
        assert_eq!(n0, vec![(1, w(4.0), 2), (2, w(5.0), 3)]);
        assert!(g.out(1).next().is_none());
    }
}
