//! Network expansion: Dijkstra's algorithm and reusable search state.
//!
//! Every approach evaluated in the paper reduces to *network expansion*
//! somewhere: the NetExp baseline runs it directly over the whole network
//! (ref \[16\]), ROAD runs it over the Route Overlay where shortcut jumps are
//! extra relaxations, shortcut construction runs it inside each Rnet, and
//! the Euclidean baseline uses A* (see [`crate::astar`]).
//!
//! The central type here is [`Dijkstra`], a reusable search state with
//! generation-stamped distance labels. Re-running a query does not pay an
//! `O(|N|)` re-initialisation — important when an experiment fires hundreds
//! of queries at a 175k-node network. The expansion is visitor-driven so
//! callers decide when to stop (k objects found, range exceeded, target
//! settled) and what to do at every settled node (object lookup).

use crate::csr::CsrGraph;
use crate::graph::{RoadNetwork, WeightKind};
use crate::ids::{EdgeId, NodeId};
use crate::path::Path;
use crate::weight::Weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What the expansion should do after settling a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Relax the node's out-edges and keep going.
    Continue,
    /// Do not relax out of this node, but keep draining the queue.
    Skip,
    /// Stop the whole expansion.
    Break,
}

const NO_PRED: u32 = u32::MAX;

/// Reusable Dijkstra state over a [`RoadNetwork`].
pub struct Dijkstra {
    dist: Vec<Weight>,
    pred_node: Vec<u32>,
    pred_edge: Vec<u32>,
    stamp: Vec<u32>,
    round: u32,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
    settled_count: usize,
    /// Scratch for [`Dijkstra::one_to_many`]; kept to avoid a per-call
    /// allocation (cleared, capacity retained).
    target_scratch: crate::hash::FastSet<u32>,
}

impl Dijkstra {
    /// Creates state sized for a network of `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Dijkstra {
            dist: vec![Weight::INFINITY; num_nodes],
            pred_node: vec![NO_PRED; num_nodes],
            pred_edge: vec![NO_PRED; num_nodes],
            stamp: vec![0; num_nodes],
            round: 0,
            heap: BinaryHeap::new(),
            settled_count: 0,
            target_scratch: crate::hash::FastSet::default(),
        }
    }

    /// Convenience constructor from a network.
    pub fn for_network(g: &RoadNetwork) -> Self {
        Dijkstra::new(g.num_nodes())
    }

    /// Grows internal arrays when the network gained nodes since creation.
    pub fn ensure_capacity(&mut self, num_nodes: usize) {
        if num_nodes > self.dist.len() {
            self.dist.resize(num_nodes, Weight::INFINITY);
            self.pred_node.resize(num_nodes, NO_PRED);
            self.pred_edge.resize(num_nodes, NO_PRED);
            self.stamp.resize(num_nodes, 0);
        }
    }

    #[inline]
    fn fresh(&mut self) {
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // Stamp wrap-around: invalidate everything explicitly once every
            // 2^32 searches.
            self.stamp.fill(0);
            self.round = 1;
        }
        self.heap.clear();
        self.settled_count = 0;
    }

    #[inline]
    fn label(&mut self, n: u32, d: Weight, pn: u32, pe: u32) {
        let i = n as usize;
        self.dist[i] = d;
        self.pred_node[i] = pn;
        self.pred_edge[i] = pe;
        self.stamp[i] = self.round;
    }

    #[inline]
    fn current_dist(&self, n: u32) -> Weight {
        let i = n as usize;
        if self.stamp[i] == self.round {
            self.dist[i]
        } else {
            Weight::INFINITY
        }
    }

    /// Distance label of `n` from the most recent run (`None` = unreached).
    #[inline]
    pub fn distance(&self, n: NodeId) -> Option<Weight> {
        let d = self.current_dist(n.0);
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// Predecessor link of `n` from the most recent run.
    pub fn predecessor(&self, n: NodeId) -> Option<(NodeId, EdgeId)> {
        if self.stamp[n.index()] != self.round || self.pred_node[n.index()] == NO_PRED {
            return None;
        }
        Some((NodeId(self.pred_node[n.index()]), EdgeId(self.pred_edge[n.index()])))
    }

    /// Number of nodes settled in the most recent run.
    pub fn settled(&self) -> usize {
        self.settled_count
    }

    /// Reconstructs the path from the most recent run's source to `dst`.
    pub fn path_to(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        let total = self.distance(dst)?;
        Path::from_predecessors(src, dst, total, |n| self.predecessor(n))
    }

    /// General expansion from possibly many `(source, initial-distance)`
    /// seeds; the multi-seed form is what object-on-edge distances need
    /// (an object is reached through either endpoint of its edge).
    ///
    /// `visitor(node, dist)` is invoked once per settled node in
    /// non-descending distance order; its return value steers the search.
    pub fn expand_multi<V>(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        sources: &[(NodeId, Weight)],
        mut visitor: V,
    ) where
        V: FnMut(NodeId, Weight) -> Control,
    {
        self.expand_filtered_multi(g, kind, sources, |_| true, &mut visitor)
    }

    /// Expansion from a single source.
    pub fn expand<V>(&mut self, g: &RoadNetwork, kind: WeightKind, src: NodeId, mut visitor: V)
    where
        V: FnMut(NodeId, Weight) -> Control,
    {
        self.expand_filtered_multi(g, kind, &[(src, Weight::ZERO)], |_| true, &mut visitor)
    }

    /// Expansion that only relaxes edges accepted by `edge_filter`. This is
    /// how shortcut construction confines Dijkstra to a single Rnet.
    pub fn expand_filtered_multi<F, V>(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        sources: &[(NodeId, Weight)],
        edge_filter: F,
        visitor: &mut V,
    ) where
        F: Fn(EdgeId) -> bool,
        V: FnMut(NodeId, Weight) -> Control,
    {
        self.ensure_capacity(g.num_nodes());
        self.fresh();
        for &(s, d0) in sources {
            if d0 < self.current_dist(s.0) {
                self.label(s.0, d0, NO_PRED, NO_PRED);
                self.heap.push(Reverse((d0, s.0)));
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.current_dist(u) {
                continue; // stale heap entry
            }
            self.settled_count += 1;
            match visitor(NodeId(u), d) {
                Control::Break => return,
                Control::Skip => continue,
                Control::Continue => {}
            }
            for (e, v) in g.neighbors(NodeId(u)) {
                if !edge_filter(e) {
                    continue;
                }
                let w = g.weight(e, kind);
                if w.is_infinite() {
                    continue; // tombstoned-by-weight edge
                }
                let nd = d + w;
                if nd < self.current_dist(v.0) {
                    self.label(v.0, nd, u, e.0);
                    self.heap.push(Reverse((nd, v.0)));
                }
            }
        }
    }

    /// Shortest network distance `||src, dst||`.
    pub fn one_to_one(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Weight> {
        let mut found = None;
        self.expand(g, kind, src, |n, d| {
            if n == dst {
                found = Some(d);
                Control::Break
            } else {
                Control::Continue
            }
        });
        found
    }

    /// Shortest path `SP(src, dst)`.
    pub fn shortest_path(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Path> {
        self.one_to_one(g, kind, src, dst)?;
        self.path_to(src, dst)
    }

    /// Distances from `src` to each of `targets`, stopping as soon as all
    /// are settled. `None` entries are unreachable targets.
    pub fn one_to_many(
        &mut self,
        g: &RoadNetwork,
        kind: WeightKind,
        src: NodeId,
        targets: &[NodeId],
    ) -> Vec<Option<Weight>> {
        let mut remaining = std::mem::take(&mut self.target_scratch);
        remaining.clear();
        remaining.extend(targets.iter().map(|t| t.0));
        self.expand(g, kind, src, |n, _| {
            remaining.remove(&n.0);
            if remaining.is_empty() {
                Control::Break
            } else {
                Control::Continue
            }
        });
        self.target_scratch = remaining;
        targets.iter().map(|&t| self.distance(t)).collect()
    }
}

thread_local! {
    /// Pool backing [`with_pooled`]: one spare `Dijkstra` per thread.
    static DIJKSTRA_POOL: std::cell::RefCell<Option<Box<Dijkstra>>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with a thread-pooled, network-sized [`Dijkstra`] — the cheap
/// way to fire many one-shot expansions (oracles, reference checks)
/// without paying an `O(|N|)` state allocation per call. Re-entrant calls
/// simply build a fresh state for the inner level.
pub fn with_pooled<R>(g: &RoadNetwork, f: impl FnOnce(&mut Dijkstra) -> R) -> R {
    let mut dij =
        DIJKSTRA_POOL.with(|p| p.borrow_mut().take()).unwrap_or_else(|| Box::new(Dijkstra::new(0)));
    dij.ensure_capacity(g.num_nodes());
    let r = f(&mut dij);
    DIJKSTRA_POOL.with(|p| *p.borrow_mut() = Some(dij));
    r
}

/// One-shot convenience: shortest distance between two nodes.
pub fn shortest_path_weight(
    g: &RoadNetwork,
    kind: WeightKind,
    src: NodeId,
    dst: NodeId,
) -> Option<Weight> {
    Dijkstra::for_network(g).one_to_one(g, kind, src, dst)
}

/// One-shot convenience: shortest path between two nodes.
pub fn shortest_path(g: &RoadNetwork, kind: WeightKind, src: NodeId, dst: NodeId) -> Option<Path> {
    Dijkstra::for_network(g).shortest_path(g, kind, src, dst)
}

/// Estimates the network diameter with the classic double-sweep heuristic:
/// expand from an arbitrary node, then expand again from the farthest node
/// found. The range-query experiments express `r` as a fraction of this.
pub fn estimate_diameter(g: &RoadNetwork, kind: WeightKind) -> Weight {
    if g.num_nodes() == 0 {
        return Weight::ZERO;
    }
    let mut dij = Dijkstra::for_network(g);
    let mut farthest = (NodeId(0), Weight::ZERO);
    dij.expand(g, kind, NodeId(0), |n, d| {
        farthest = (n, d);
        Control::Continue
    });
    let mut best = Weight::ZERO;
    dij.expand(g, kind, farthest.0, |_, d| {
        best = d;
        Control::Continue
    });
    best
}

// ---------------------------------------------------------------------------
// Local (dense-relabelled) Dijkstra over small virtual graphs.
// ---------------------------------------------------------------------------

/// An edge of a *local* graph: Rnet-internal subgraphs and the border-node
/// overlay graphs used to compose shortcuts level by level (Lemma 2).
/// `label` is an opaque caller-supplied tag carried into predecessor links
/// (e.g. "physical edge id" or "child shortcut id").
#[derive(Clone, Copy, Debug)]
pub struct LocalEdge {
    pub to: u32,
    pub weight: Weight,
    pub label: u32,
}

/// Reusable Dijkstra over caller-provided local adjacency lists.
pub struct LocalDijkstra {
    dist: Vec<Weight>,
    pred_node: Vec<u32>,
    pred_label: Vec<u32>,
    stamp: Vec<u32>,
    /// Generation-stamped target marker (replaces a per-run `Vec<bool>`).
    target_stamp: Vec<u32>,
    round: u32,
    heap: BinaryHeap<Reverse<(Weight, u32)>>,
}

impl Default for LocalDijkstra {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalDijkstra {
    /// Creates empty reusable state.
    pub fn new() -> Self {
        LocalDijkstra {
            dist: Vec::new(),
            pred_node: Vec::new(),
            pred_label: Vec::new(),
            stamp: Vec::new(),
            target_stamp: Vec::new(),
            round: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Runs from `src` over `adj`. When `targets` is non-empty the run
    /// terminates early once all of them are settled.
    pub fn run(&mut self, adj: &[Vec<LocalEdge>], src: u32, targets: &[u32]) {
        let n = adj.len();
        if n > self.dist.len() {
            self.dist.resize(n, Weight::INFINITY);
            self.pred_node.resize(n, NO_PRED);
            self.pred_label.resize(n, NO_PRED);
            self.stamp.resize(n, 0);
            self.target_stamp.resize(n, 0);
        }
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.round = 1;
        }
        self.heap.clear();

        let mut pending = targets.len();
        for &t in targets {
            self.target_stamp[t as usize] = self.round;
        }

        self.dist[src as usize] = Weight::ZERO;
        self.pred_node[src as usize] = NO_PRED;
        self.stamp[src as usize] = self.round;
        self.heap.push(Reverse((Weight::ZERO, src)));

        while let Some(Reverse((d, u))) = self.heap.pop() {
            let ui = u as usize;
            if self.stamp[ui] != self.round || d > self.dist[ui] {
                continue;
            }
            if pending > 0 && self.target_stamp[ui] == self.round {
                // A target can be pushed twice; only count its settlement once.
                self.target_stamp[ui] = self.round.wrapping_sub(1);
                pending -= 1;
                if pending == 0 {
                    return;
                }
            }
            for le in &adj[ui] {
                if le.weight.is_infinite() {
                    continue;
                }
                let nd = d + le.weight;
                let vi = le.to as usize;
                let cur =
                    if self.stamp[vi] == self.round { self.dist[vi] } else { Weight::INFINITY };
                if nd < cur {
                    self.dist[vi] = nd;
                    self.pred_node[vi] = u;
                    self.pred_label[vi] = le.label;
                    self.stamp[vi] = self.round;
                    self.heap.push(Reverse((nd, le.to)));
                }
            }
        }
    }

    /// Runs from `src` over a flat CSR arena (see [`crate::csr`]).  Same
    /// semantics and tie discipline as [`run`](Self::run) — arc labels are
    /// carried into predecessor links, infinite arcs are skipped, and when
    /// `targets` is non-empty the run stops once all of them are settled —
    /// plus one extra knob: nodes with id `< seal_below` (other than `src`)
    /// are *sealed*.  A sealed node is settled normally but never relaxed
    /// out of, so every returned path is internally free of sealed nodes.
    /// Pass `seal_below = 0` for an ordinary run.
    ///
    /// The shortcut builder seals border ids to materialise paths that
    /// avoid intermediate borders (the transitive prune of Lemma 4) in a
    /// single pass.
    pub fn run_csr(&mut self, g: &CsrGraph, src: u32, targets: &[u32], seal_below: u32) {
        let n = g.num_nodes();
        if n > self.dist.len() {
            self.dist.resize(n, Weight::INFINITY);
            self.pred_node.resize(n, NO_PRED);
            self.pred_label.resize(n, NO_PRED);
            self.stamp.resize(n, 0);
            self.target_stamp.resize(n, 0);
        }
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            self.stamp.fill(0);
            self.target_stamp.fill(0);
            self.round = 1;
        }
        self.heap.clear();

        let mut pending = targets.len();
        for &t in targets {
            self.target_stamp[t as usize] = self.round;
        }

        self.dist[src as usize] = Weight::ZERO;
        self.pred_node[src as usize] = NO_PRED;
        self.stamp[src as usize] = self.round;
        self.heap.push(Reverse((Weight::ZERO, src)));

        while let Some(Reverse((d, u))) = self.heap.pop() {
            let ui = u as usize;
            if self.stamp[ui] != self.round || d > self.dist[ui] {
                continue;
            }
            if pending > 0 && self.target_stamp[ui] == self.round {
                // A target can be pushed twice; only count its settlement once.
                self.target_stamp[ui] = self.round.wrapping_sub(1);
                pending -= 1;
                if pending == 0 {
                    return;
                }
            }
            if u != src && u < seal_below {
                continue; // sealed: settled but never expanded
            }
            for (to, weight, label) in g.out(u) {
                if weight.is_infinite() {
                    continue;
                }
                let nd = d + weight;
                let vi = to as usize;
                let cur =
                    if self.stamp[vi] == self.round { self.dist[vi] } else { Weight::INFINITY };
                if nd < cur {
                    self.dist[vi] = nd;
                    self.pred_node[vi] = u;
                    self.pred_label[vi] = label;
                    self.stamp[vi] = self.round;
                    self.heap.push(Reverse((nd, to)));
                }
            }
        }
    }

    /// Distance of `n` from the last run.
    #[inline]
    pub fn dist(&self, n: u32) -> Weight {
        let i = n as usize;
        if i < self.stamp.len() && self.stamp[i] == self.round {
            self.dist[i]
        } else {
            Weight::INFINITY
        }
    }

    /// Predecessor `(node, label)` of `n` from the last run.
    #[inline]
    pub fn pred(&self, n: u32) -> Option<(u32, u32)> {
        let i = n as usize;
        if i < self.stamp.len() && self.stamp[i] == self.round && self.pred_node[i] != NO_PRED {
            Some((self.pred_node[i], self.pred_label[i]))
        } else {
            None
        }
    }

    /// Walks predecessor links from `dst` back to the source, returning the
    /// label sequence in forward order. `None` if `dst` was not reached.
    pub fn labels_to(&self, dst: u32) -> Option<Vec<u32>> {
        if self.dist(dst).is_infinite() {
            return None;
        }
        let mut labels = Vec::new();
        let mut cur = dst;
        while let Some((p, l)) = self.pred(cur) {
            labels.push(l);
            cur = p;
        }
        labels.reverse();
        Some(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::NetworkBuilder;

    /// Small fixture mirroring Figure 8's chain with a detour.
    fn diamond() -> RoadNetwork {
        // 0 --1-- 1 --1-- 3
        //  \--3-- 2 --1--/
        let mut b = NetworkBuilder::default();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(Point::new(i as f64, 0.0))).collect();
        b.add_edge(n[0], n[1], 1.0).unwrap();
        b.add_edge(n[1], n[3], 1.0).unwrap();
        b.add_edge(n[0], n[2], 3.0).unwrap();
        b.add_edge(n[2], n[3], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn one_to_one_takes_the_short_route() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        assert_eq!(
            d.one_to_one(&g, WeightKind::Distance, NodeId(0), NodeId(3)),
            Some(Weight::new(2.0))
        );
        // node 2 is reached more cheaply through 3 than directly
        assert_eq!(
            d.one_to_one(&g, WeightKind::Distance, NodeId(0), NodeId(2)),
            Some(Weight::new(3.0))
        );
    }

    #[test]
    fn shortest_path_reconstructs_and_validates() {
        let g = diamond();
        let p = shortest_path(&g, WeightKind::Distance, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(p.total(), Weight::new(2.0));
        assert!(p.validate(&g, WeightKind::Distance));
    }

    #[test]
    fn expansion_settles_in_distance_order() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        let mut order = Vec::new();
        d.expand(&g, WeightKind::Distance, NodeId(0), |n, dist| {
            order.push((n, dist));
            Control::Continue
        });
        let dists: Vec<f64> = order.iter().map(|(_, w)| w.get()).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "not sorted: {dists:?}");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn break_stops_and_skip_prunes() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        let mut count = 0;
        d.expand(&g, WeightKind::Distance, NodeId(0), |_, _| {
            count += 1;
            Control::Break
        });
        assert_eq!(count, 1);
        // Skipping the source means nothing else is ever reached.
        let mut settled = Vec::new();
        d.expand(&g, WeightKind::Distance, NodeId(0), |n, _| {
            settled.push(n);
            Control::Skip
        });
        assert_eq!(settled, vec![NodeId(0)]);
    }

    #[test]
    fn reuse_across_runs_is_clean() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        for _ in 0..100 {
            assert_eq!(
                d.one_to_one(&g, WeightKind::Distance, NodeId(0), NodeId(3)),
                Some(Weight::new(2.0))
            );
            assert_eq!(
                d.one_to_one(&g, WeightKind::Distance, NodeId(3), NodeId(0)),
                Some(Weight::new(2.0))
            );
        }
        // labels from the previous run (source 3) don't leak
        assert_eq!(d.distance(NodeId(3)), Some(Weight::ZERO));
        assert_eq!(d.distance(NodeId(0)), Some(Weight::new(2.0)));
    }

    #[test]
    fn multi_source_seeds_compete() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        let mut first = None;
        d.expand_multi(
            &g,
            WeightKind::Distance,
            &[(NodeId(0), Weight::new(5.0)), (NodeId(3), Weight::ZERO)],
            |n, dist| {
                if first.is_none() {
                    first = Some((n, dist));
                }
                Control::Continue
            },
        );
        assert_eq!(first, Some((NodeId(3), Weight::ZERO)));
        // node 1 is at 1.0 via node 3, cheaper than 6.0 via node 0
        assert_eq!(d.distance(NodeId(1)), Some(Weight::new(1.0)));
    }

    #[test]
    fn one_to_many_early_exits() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        let res = d.one_to_many(&g, WeightKind::Distance, NodeId(0), &[NodeId(1), NodeId(3)]);
        assert_eq!(res, vec![Some(Weight::new(1.0)), Some(Weight::new(2.0))]);
    }

    #[test]
    fn edge_filter_confines_search() {
        let g = diamond();
        let mut d = Dijkstra::for_network(&g);
        // Only allow the bottom route 0-2-3.
        let allowed = [EdgeId(2), EdgeId(3)];
        let mut seen = Vec::new();
        d.expand_filtered_multi(
            &g,
            WeightKind::Distance,
            &[(NodeId(0), Weight::ZERO)],
            |e| allowed.contains(&e),
            &mut |n, _| {
                seen.push(n);
                Control::Continue
            },
        );
        assert_eq!(d.distance(NodeId(3)), Some(Weight::new(4.0)));
        assert_eq!(d.distance(NodeId(1)), None);
    }

    #[test]
    fn infinite_weight_edges_are_impassable() {
        let mut g = diamond();
        g.set_weight(EdgeId(0), WeightKind::Distance, Weight::INFINITY).unwrap();
        let mut d = Dijkstra::for_network(&g);
        // must go the long way now
        assert_eq!(
            d.one_to_one(&g, WeightKind::Distance, NodeId(0), NodeId(3)),
            Some(Weight::new(4.0))
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = NetworkBuilder::default();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        let g = b.build();
        assert_eq!(shortest_path_weight(&g, WeightKind::Distance, a, c), None);
        assert!(shortest_path(&g, WeightKind::Distance, a, c).is_none());
    }

    #[test]
    fn diameter_of_a_chain_is_its_length() {
        let mut b = NetworkBuilder::default();
        let n: Vec<NodeId> = (0..5).map(|i| b.add_node(Point::new(i as f64, 0.0))).collect();
        for w in n.windows(2) {
            b.add_edge(w[0], w[1], 2.0).unwrap();
        }
        let g = b.build();
        assert_eq!(estimate_diameter(&g, WeightKind::Distance), Weight::new(8.0));
    }

    #[test]
    fn local_dijkstra_matches_dense() {
        let g = diamond();
        // Build the same graph as local adjacency.
        let mut adj: Vec<Vec<LocalEdge>> = vec![Vec::new(); 4];
        for e in g.edge_ids() {
            let (a, b) = g.edge(e).endpoints();
            let w = g.weight(e, WeightKind::Distance);
            adj[a.index()].push(LocalEdge { to: b.0, weight: w, label: e.0 });
            adj[b.index()].push(LocalEdge { to: a.0, weight: w, label: e.0 });
        }
        let mut ld = LocalDijkstra::new();
        ld.run(&adj, 0, &[]);
        assert_eq!(ld.dist(3), Weight::new(2.0));
        assert_eq!(ld.dist(2), Weight::new(3.0));
        assert_eq!(ld.labels_to(3), Some(vec![0, 1]));
        // early-exit variant still produces correct labels for the target
        ld.run(&adj, 0, &[1]);
        assert_eq!(ld.dist(1), Weight::new(1.0));
        // reuse across rounds
        ld.run(&adj, 3, &[]);
        assert_eq!(ld.dist(0), Weight::new(2.0));
    }

    #[test]
    fn run_csr_matches_adjacency_run_and_seals_borders() {
        let g = diamond();
        let mut adj: Vec<Vec<LocalEdge>> = vec![Vec::new(); 4];
        let mut b = crate::csr::CsrBuilder::default();
        for e in g.edge_ids() {
            let (a, bb) = g.edge(e).endpoints();
            let w = g.weight(e, WeightKind::Distance);
            adj[a.index()].push(LocalEdge { to: bb.0, weight: w, label: e.0 });
            adj[bb.index()].push(LocalEdge { to: a.0, weight: w, label: e.0 });
            b.push(a.0, bb.0, w, e.0);
            b.push(bb.0, a.0, w, e.0);
        }
        let mut csr = crate::csr::CsrGraph::default();
        b.finish_into(4, &mut csr);

        let mut ld = LocalDijkstra::new();
        let mut lc = LocalDijkstra::new();
        for src in 0..4u32 {
            ld.run(&adj, src, &[]);
            lc.run_csr(&csr, src, &[], 0);
            for n in 0..4u32 {
                assert_eq!(ld.dist(n), lc.dist(n), "src {src} node {n}");
                assert_eq!(ld.pred(n), lc.pred(n), "src {src} node {n}");
            }
        }

        // Sealing node 1 forces 0 -> 3 through the detour over node 2, and
        // the sealed node itself keeps its direct (settled) label.
        lc.run_csr(&csr, 0, &[], 2);
        assert_eq!(lc.dist(3), Weight::new(4.0));
        assert_eq!(lc.labels_to(3), Some(vec![2, 3]));
        assert_eq!(lc.dist(1), Weight::new(1.0));

        // Early exit with targets still settles the requested nodes.
        lc.run_csr(&csr, 0, &[3], 0);
        assert_eq!(lc.dist(3), Weight::new(2.0));
        assert_eq!(lc.labels_to(3), Some(vec![0, 1]));
    }
}
