//! Error type for network construction and algorithms.

use crate::ids::{EdgeId, NodeId};
use std::fmt;

/// Errors produced by the network substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A node id referenced a node that does not exist.
    NodeOutOfBounds(NodeId),
    /// An edge id referenced an edge that does not exist.
    EdgeOutOfBounds(EdgeId),
    /// A weight was NaN or negative.
    InvalidWeight(f64),
    /// A self-loop `(n, n)` was added; the road model forbids them.
    SelfLoop(NodeId),
    /// The graph is not connected but the operation requires it.
    Disconnected { components: usize },
    /// An edge between the two nodes already exists.
    DuplicateEdge(NodeId, NodeId),
    /// The requested edge was already deleted (tombstoned).
    EdgeDeleted(EdgeId),
    /// Generator targets were infeasible (e.g. more edges than a planar
    /// backbone can carry, or fewer than a spanning tree needs).
    InfeasibleTargets(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NodeOutOfBounds(n) => write!(f, "node {n} is out of bounds"),
            NetworkError::EdgeOutOfBounds(e) => write!(f, "edge {e} is out of bounds"),
            NetworkError::InvalidWeight(w) => write!(f, "invalid edge weight {w}"),
            NetworkError::SelfLoop(n) => write!(f, "self-loop at {n} is not allowed"),
            NetworkError::Disconnected { components } => {
                write!(f, "network is disconnected ({components} components)")
            }
            NetworkError::DuplicateEdge(a, b) => {
                write!(f, "an edge between {a} and {b} already exists")
            }
            NetworkError::EdgeDeleted(e) => write!(f, "edge {e} has been deleted"),
            NetworkError::InfeasibleTargets(msg) => {
                write!(f, "infeasible generator targets: {msg}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_human_readably() {
        let e = NetworkError::Disconnected { components: 3 };
        assert_eq!(e.to_string(), "network is disconnected (3 components)");
        let e = NetworkError::SelfLoop(NodeId(4));
        assert!(e.to_string().contains("n4"));
    }
}
