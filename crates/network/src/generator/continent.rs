//! Continental-scale network generator: a highway backbone joining many
//! street-grid cities.
//!
//! The paper's largest datasets top out around 175k nodes; production road
//! networks are an order of magnitude bigger and mix both regimes — long
//! degree-2 interstate chains *and* dense urban lattices. This generator
//! composes the two: city centres are joined by a Kruskal backbone whose
//! segments are subdivided into highway chains (as in [`super::highway`]),
//! and each city is a perturbed street lattice (as in [`super::streets`])
//! whose central node doubles as the highway interchange.
//!
//! **Streaming-friendly:** everything is emitted straight into one
//! [`NetworkBuilder`] — city by city, then segment by segment — so peak
//! memory is the builder itself plus `O(city)` transient state, never a
//! second copy of the graph. That is what makes the `--scale large`
//! (~10^6-node) preset buildable in CI-sized containers.
//!
//! The node count is hit *exactly* (lattice nodes are fixed per city and
//! the remainder is spread over backbone segments by largest-remainder
//! allocation); the edge count follows from the street-deletion ratio and
//! is approximate by design — continental benchmarks care about scale, not
//! a table-matching edge count.

use super::{add_subdivided_edge, allocate_proportional, RoadClass};
use crate::error::NetworkError;
use crate::graph::{NetworkBuilder, RoadNetwork};
use crate::ids::NodeId;
use crate::unionfind::UnionFind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Targets and tuning for [`generate`].
#[derive(Clone, Debug)]
pub struct ContinentConfig {
    /// Exact number of nodes in the output.
    pub nodes: usize,
    /// Number of street-grid cities on the backbone (`>= 2`).
    pub cities: usize,
    /// Side length of the square embedding region.
    pub extent: f64,
    /// RNG seed; equal seeds give identical networks.
    pub seed: u64,
}

/// Fraction of the node budget spent inside cities; the rest becomes
/// degree-2 highway chain nodes between them.
const STREET_SHARE: f64 = 0.65;

/// Street edges kept per lattice node (SF-like density after deletion).
const STREET_EDGE_RATIO: f64 = 1.3;

/// Generates a continent-scale network hitting the configured node count
/// exactly; the edge count follows from the density constants above.
pub fn generate(cfg: &ContinentConfig) -> Result<RoadNetwork, NetworkError> {
    if cfg.cities < 2 {
        return Err(NetworkError::InfeasibleTargets(format!(
            "a continent needs at least 2 cities, got {}",
            cfg.cities
        )));
    }
    let street_nodes = (cfg.nodes as f64 * STREET_SHARE) as usize;
    let side = ((street_nodes / cfg.cities) as f64).sqrt().floor() as usize;
    if side < 2 {
        return Err(NetworkError::InfeasibleTargets(format!(
            "{} nodes cannot host {} street grids (lattice side {side} < 2)",
            cfg.nodes, cfg.cities
        )));
    }
    let lattice_nodes = side * side;
    let highway_nodes = cfg.nodes - cfg.cities * lattice_nodes;

    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // 1. City centres, uniform over the extent; cities are small relative
    //    to the map so overlaps are rare and harmless.
    let centres: Vec<(f64, f64)> = (0..cfg.cities)
        .map(|_| (rng.random_range(0.0..cfg.extent), rng.random_range(0.0..cfg.extent)))
        .collect();

    // 2. Backbone topology over the centres: Kruskal spanning tree from
    //    the all-pairs candidate list (cities are few, O(C^2) is nothing),
    //    then the next-shortest chords until ~C/3 redundant links exist.
    let mut candidates: Vec<(f64, u32, u32)> = Vec::with_capacity(cfg.cities * cfg.cities / 2);
    for i in 0..cfg.cities {
        for j in (i + 1)..cfg.cities {
            let d2 = (centres[i].0 - centres[j].0).powi(2) + (centres[i].1 - centres[j].1).powi(2);
            candidates.push((d2, i as u32, j as u32));
        }
    }
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then((a.1, a.2).cmp(&(b.1, b.2))));
    let target_segments = (cfg.cities - 1) + cfg.cities / 3;
    let mut uf = UnionFind::new(cfg.cities);
    let mut segments: Vec<(u32, u32)> = Vec::with_capacity(target_segments);
    for &(_, a, b) in &candidates {
        if segments.len() >= target_segments && uf.components() == 1 {
            break;
        }
        let joins = uf.union(a, b);
        if joins || segments.len() < target_segments {
            segments.push((a, b));
        }
    }

    // 3. Chain-node budget per segment, proportional to length so long
    //    interstates get long chains. Exact by largest remainder.
    let lengths: Vec<f64> = segments
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = centres[a as usize];
            let (bx, by) = centres[b as usize];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        })
        .collect();
    let subdivisions = allocate_proportional(highway_nodes, &lengths);

    // 4. Emit each city's lattice straight into the builder, remembering
    //    only its interchange node. Transient state is O(side^2) per city
    //    and reused (conceptually) across iterations — the builder is the
    //    only structure that grows with the whole graph.
    let city_extent = (cfg.extent / (cfg.cities as f64).sqrt()) * 0.25;
    let est_edges = (cfg.nodes as f64 * (STREET_SHARE * STREET_EDGE_RATIO + 1.0 - STREET_SHARE))
        as usize
        + segments.len();
    let mut b = NetworkBuilder::with_capacity(cfg.nodes, est_edges);
    let mut hubs: Vec<NodeId> = Vec::with_capacity(cfg.cities);
    let mut hub_xy: Vec<(f64, f64)> = Vec::with_capacity(cfg.cities);
    for &(cx, cy) in &centres {
        let (hub, xy) = emit_city(&mut b, &mut rng, cx, cy, side, city_extent);
        hubs.push(hub);
        hub_xy.push(xy);
    }

    // 5. Highway chains between interchanges; longer segments are faster
    //    interstates and a few carry tolls, as in the highway generator.
    let mut sorted_len = lengths.clone();
    sorted_len.sort_by(f64::total_cmp);
    let fast_cutoff = sorted_len[sorted_len.len() * 2 / 3];
    for (i, &(u, v)) in segments.iter().enumerate() {
        let tolled = rng.random_range(0.0..1.0) < 0.07;
        let class = RoadClass {
            speed_kmh: if lengths[i] >= fast_cutoff { 110.0 } else { 80.0 },
            toll_rate: if tolled { 0.05 } else { 0.01 },
            curvature: 1.02,
        };
        add_subdivided_edge(
            &mut b,
            &mut rng,
            hubs[u as usize],
            hub_xy[u as usize],
            hubs[v as usize],
            hub_xy[v as usize],
            subdivisions[i],
            class,
        );
    }

    let g = b.build();
    debug_assert_eq!(g.num_nodes(), cfg.nodes);
    Ok(g)
}

/// Emits one city's perturbed `side x side` lattice (spanning tree plus a
/// random fill up to [`STREET_EDGE_RATIO`] edges per node) and returns its
/// centre-most node as the highway interchange.
fn emit_city(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    cx: f64,
    cy: f64,
    side: usize,
    city_extent: f64,
) -> (NodeId, (f64, f64)) {
    let n0 = side * side;
    let cell = city_extent / (side - 1).max(1) as f64;
    let origin = (cx - city_extent / 2.0, cy - city_extent / 2.0);
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(n0);
    let mut ids: Vec<NodeId> = Vec::with_capacity(n0);
    for y in 0..side {
        for x in 0..side {
            let jx = rng.random_range(-0.25..0.25) * cell;
            let jy = rng.random_range(-0.25..0.25) * cell;
            let p = (origin.0 + x as f64 * cell + jx, origin.1 + y as f64 * cell + jy);
            pts.push(p);
            ids.push(b.add_node(crate::geometry::Point::new(p.0, p.1)));
        }
    }
    let idx = |x: usize, y: usize| (y * side + x) as u32;
    let mut lattice: Vec<(u32, u32)> = Vec::with_capacity(2 * n0);
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                lattice.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < side {
                lattice.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    // Spanning tree first (connectivity), then random fill to the target
    // density, clamped to what the lattice actually has.
    lattice.shuffle(rng);
    let keep = ((n0 as f64 * STREET_EDGE_RATIO) as usize).clamp(n0 - 1, lattice.len());
    let mut uf = UnionFind::new(n0);
    let mut kept: Vec<(u32, u32)> = Vec::with_capacity(keep);
    let mut rest: Vec<(u32, u32)> = Vec::with_capacity(lattice.len());
    for &(a, bb) in &lattice {
        if uf.union(a, bb) {
            kept.push((a, bb));
        } else {
            rest.push((a, bb));
        }
    }
    kept.extend(rest.into_iter().take(keep.saturating_sub(kept.len())));
    for &(u, v) in &kept {
        let arterial = rng.random_range(0.0..1.0) < 0.1;
        let class = RoadClass {
            speed_kmh: if arterial { 60.0 } else { 35.0 },
            toll_rate: 0.005,
            curvature: 1.01,
        };
        super::push_road_edge(
            b,
            rng,
            ids[u as usize],
            crate::geometry::Point::new(pts[u as usize].0, pts[u as usize].1),
            ids[v as usize],
            crate::geometry::Point::new(pts[v as usize].0, pts[v as usize].1),
            class,
        );
    }
    let hub = idx(side / 2, side / 2) as usize;
    (ids[hub], pts[hub])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ContinentConfig {
        ContinentConfig { nodes: 5_000, cities: 6, extent: 2_000.0, seed: 11 }
    }

    #[test]
    fn hits_exact_node_target_and_is_connected() {
        let g = generate(&small_cfg()).unwrap();
        assert_eq!(g.num_nodes(), 5_000);
        assert_eq!(g.connected_components(), 1);
        // Mixed regime: denser than a pure highway map, sparser than a
        // pure street grid.
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio > 1.05 && ratio < 1.45, "continent ratio off: {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_cfg()).unwrap();
        let b = generate(&small_cfg()).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea).endpoints(), b.edge(eb).endpoints());
            assert_eq!(
                a.weight(ea, crate::graph::WeightKind::Distance),
                b.weight(eb, crate::graph::WeightKind::Distance)
            );
        }
        let c = generate(&ContinentConfig { seed: 12, ..small_cfg() }).unwrap();
        let same = a
            .edge_ids()
            .zip(c.edge_ids())
            .all(|(ea, ec)| a.edge(ea).endpoints() == c.edge(ec).endpoints());
        assert!(!same);
    }

    #[test]
    fn mixes_chains_and_intersections() {
        let g = generate(&small_cfg()).unwrap();
        let deg2 = g.node_ids().filter(|&n| g.degree(n) == 2).count();
        let deg3 = g.node_ids().filter(|&n| g.degree(n) >= 3).count();
        // Highway chains and street intersections must both be present in
        // bulk — that is the point of the mixed preset.
        assert!(deg2 as f64 > 0.2 * g.num_nodes() as f64, "missing highway chains: {deg2}");
        assert!(deg3 as f64 > 0.2 * g.num_nodes() as f64, "missing street cores: {deg3}");
    }

    #[test]
    fn weights_dominate_euclidean_length() {
        let g = generate(&small_cfg()).unwrap();
        for e in g.edge_ids() {
            let w = g.weight(e, crate::graph::WeightKind::Distance).get();
            let l = g.euclidean_length(e);
            assert!(w >= l * 0.999, "edge {e:?}: weight {w} < euclid {l}");
        }
    }

    #[test]
    fn rejects_infeasible_targets() {
        let bad = ContinentConfig { nodes: 100, cities: 50, extent: 10.0, seed: 1 };
        assert!(matches!(generate(&bad), Err(NetworkError::InfeasibleTargets(_))));
        let bad = ContinentConfig { nodes: 1_000, cities: 1, extent: 10.0, seed: 1 };
        assert!(matches!(generate(&bad), Err(NetworkError::InfeasibleTargets(_))));
    }
}
