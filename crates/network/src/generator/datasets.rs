//! The paper's three evaluation networks as named presets.

use super::{continent::ContinentConfig, highway::HighwayConfig, streets::StreetsConfig};
use crate::error::NetworkError;
use crate::graph::RoadNetwork;

/// One of the paper's evaluation datasets (Table 1), reproduced
/// synthetically with matching statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dataset {
    /// California highways: 21,048 nodes / 21,693 edges.
    CaHighways,
    /// North-America highways: 175,813 nodes / 179,179 edges.
    NaHighways,
    /// San Francisco streets: 174,956 nodes / 223,001 edges.
    SfStreets,
    /// Continental mix beyond the paper's scale: a highway backbone over
    /// ~100 street-grid cities, ~10^6 nodes. Node count is exact, edge
    /// count approximate (set by the generator's density constants).
    Continent,
}

impl Dataset {
    /// The paper's three datasets in the order it tabulates them.
    /// [`Dataset::Continent`] is deliberately excluded: it benchmarks
    /// beyond-paper scale and only enters through `--scale large`.
    pub const ALL: [Dataset; 3] = [Dataset::CaHighways, Dataset::NaHighways, Dataset::SfStreets];

    /// Short label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::CaHighways => "CA",
            Dataset::NaHighways => "NA",
            Dataset::SfStreets => "SF",
            Dataset::Continent => "CONT",
        }
    }

    /// Node-count target (the real dataset's size).
    pub fn node_target(self) -> usize {
        match self {
            Dataset::CaHighways => 21_048,
            Dataset::NaHighways => 175_813,
            Dataset::SfStreets => 174_956,
            Dataset::Continent => 1_000_000,
        }
    }

    /// Edge-count target (the real dataset's size).
    pub fn edge_target(self) -> usize {
        match self {
            Dataset::CaHighways => 21_693,
            Dataset::NaHighways => 179_179,
            Dataset::SfStreets => 223_001,
            // Approximate (see the variant doc); ~65% street nodes at
            // ratio 1.3 plus degree-2 highway chains.
            Dataset::Continent => 1_195_000,
        }
    }

    /// Default Rnet hierarchy depth the paper uses for this network
    /// (Section 6: `l = 4` for CA, `l = 8` for NA and SF, with `p = 4`).
    pub fn default_levels(self) -> u32 {
        match self {
            Dataset::CaHighways => 4,
            Dataset::NaHighways => 8,
            Dataset::SfStreets => 8,
            Dataset::Continent => 8,
        }
    }

    /// Generates the full-size network.
    pub fn generate(self, seed: u64) -> Result<RoadNetwork, NetworkError> {
        self.generate_scaled(1.0, seed)
    }

    /// Generates a proportionally scaled-down version (`scale` in `(0, 1]`)
    /// for CI and quick runs. `scale = 1.0` gives the paper-sized network.
    pub fn generate_scaled(self, scale: f64, seed: u64) -> Result<RoadNetwork, NetworkError> {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let nodes = ((self.node_target() as f64 * scale) as usize).max(64);
        // Preserve the cyclomatic number proportionally; it controls how
        // "loopy" the network is, which is what distinguishes SF from NA.
        let cyclomatic = self.edge_target() as i64 - self.node_target() as i64;
        let edges =
            (nodes as i64 + (cyclomatic as f64 * scale).round() as i64).max(nodes as i64) as usize;
        match self {
            Dataset::Continent => super::continent::generate(&ContinentConfig {
                nodes,
                cities: (nodes / 10_000).clamp(4, 120),
                extent: 5_000.0 * scale.sqrt(),
                seed: seed ^ self.seed_salt(),
            }),
            Dataset::CaHighways | Dataset::NaHighways => {
                let backbone = match self {
                    Dataset::CaHighways => (2_000.0 * scale) as usize,
                    _ => (12_000.0 * scale) as usize,
                }
                .max(16);
                super::highway::generate(&HighwayConfig {
                    nodes,
                    edges,
                    backbone_nodes: backbone.min(nodes),
                    extent: 1_000.0 * scale.sqrt(),
                    seed: seed ^ self.seed_salt(),
                })
            }
            Dataset::SfStreets => super::streets::generate(&StreetsConfig {
                nodes,
                edges,
                extent: 120.0 * scale.sqrt(),
                seed: seed ^ self.seed_salt(),
            }),
        }
    }

    /// Suggested hierarchy depth for a scaled network: deep enough that the
    /// finest Rnets hold a few dozen edges, clamped to the paper's range.
    pub fn suggested_levels(self, num_edges: usize, fanout: usize) -> u32 {
        let fanout = fanout.max(2) as f64;
        let mut l = 1u32;
        let mut rnets = fanout;
        while (num_edges as f64 / rnets) > 48.0 && l < 10 {
            l += 1;
            rnets *= fanout;
        }
        l.max(2)
    }

    fn seed_salt(self) -> u64 {
        match self {
            Dataset::CaHighways => 0xCA11F012_00000001,
            Dataset::NaHighways => 0x0A0E12CA_00000002,
            Dataset::SfStreets => 0x5AF2A9C0_00000003,
            Dataset::Continent => 0xC04713E7_00000004,
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_ca_matches_shape() {
        let g = Dataset::CaHighways.generate_scaled(0.05, 1).unwrap();
        assert_eq!(g.num_nodes(), (21_048.0 * 0.05) as usize);
        assert_eq!(g.connected_components(), 1);
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio > 1.0 && ratio < 1.1, "highway ratio off: {ratio}");
    }

    #[test]
    fn scaled_sf_is_denser_than_na() {
        let sf = Dataset::SfStreets.generate_scaled(0.01, 1).unwrap();
        let na = Dataset::NaHighways.generate_scaled(0.01, 1).unwrap();
        let sf_ratio = sf.num_edges() as f64 / sf.num_nodes() as f64;
        let na_ratio = na.num_edges() as f64 / na.num_nodes() as f64;
        assert!(sf_ratio > na_ratio + 0.1, "SF {sf_ratio} vs NA {na_ratio}");
    }

    #[test]
    fn scaled_continent_mixes_regimes() {
        let g = Dataset::Continent.generate_scaled(0.005, 1).unwrap();
        assert_eq!(g.num_nodes(), (1_000_000.0 * 0.005) as usize);
        assert_eq!(g.connected_components(), 1);
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio > 1.05 && ratio < 1.45, "continent ratio off: {ratio}");
    }

    #[test]
    fn names_and_defaults() {
        assert_eq!(Dataset::CaHighways.name(), "CA");
        assert_eq!(Dataset::CaHighways.default_levels(), 4);
        assert_eq!(Dataset::SfStreets.default_levels(), 8);
        assert_eq!(format!("{}", Dataset::NaHighways), "NA");
    }

    #[test]
    fn suggested_levels_grow_with_size() {
        let d = Dataset::CaHighways;
        let small = d.suggested_levels(500, 4);
        let large = d.suggested_levels(200_000, 4);
        assert!(small < large);
        assert!(small >= 2);
        assert!(large <= 10);
    }
}
