//! Highway-like network generator (CA / NA analogue).
//!
//! Real highway datasets are dominated by long chains of degree-2 vertices:
//! CA has 21,048 nodes but only 21,693 edges (ratio 1.031). We reproduce
//! that by (1) building a sparse planar-ish *backbone* of intersections
//! connected to near neighbours, then (2) subdividing backbone segments
//! with degree-2 chain nodes until the exact node/edge targets are met.
//! Subdivision adds one node and one edge at a time, so the cyclomatic
//! number `E - N` is fixed entirely by the backbone — which is how the
//! generator hits both targets exactly.

use super::{add_subdivided_edge, allocate_proportional, RoadClass};
use crate::error::NetworkError;
use crate::graph::{NetworkBuilder, RoadNetwork};
use crate::unionfind::UnionFind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Targets and tuning for [`generate`].
#[derive(Clone, Debug)]
pub struct HighwayConfig {
    /// Exact number of nodes in the output.
    pub nodes: usize,
    /// Exact number of edges in the output.
    pub edges: usize,
    /// Number of backbone intersections (`<= nodes`).
    pub backbone_nodes: usize,
    /// Side length of the square embedding region.
    pub extent: f64,
    /// RNG seed; equal seeds give identical networks.
    pub seed: u64,
}

/// Generates a highway-like network hitting the configured node and edge
/// counts exactly.
pub fn generate(cfg: &HighwayConfig) -> Result<RoadNetwork, NetworkError> {
    let bb = cfg.backbone_nodes;
    if bb < 2 || bb > cfg.nodes {
        return Err(NetworkError::InfeasibleTargets(format!(
            "backbone_nodes = {bb} must be in [2, nodes = {}]",
            cfg.nodes
        )));
    }
    let cyclomatic = cfg.edges as i64 - cfg.nodes as i64;
    let backbone_edges = bb as i64 + cyclomatic;
    if backbone_edges < bb as i64 - 1 {
        return Err(NetworkError::InfeasibleTargets(format!(
            "edges - nodes = {cyclomatic} leaves the backbone short of a spanning tree"
        )));
    }
    let backbone_edges = backbone_edges as usize;
    let max_edges = bb * (bb - 1) / 2;
    if backbone_edges > max_edges {
        return Err(NetworkError::InfeasibleTargets(format!(
            "backbone cannot carry {backbone_edges} edges over {bb} nodes"
        )));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // 1. Backbone intersections, uniform over the extent.
    let pts: Vec<(f64, f64)> = (0..bb)
        .map(|_| (rng.random_range(0.0..cfg.extent), rng.random_range(0.0..cfg.extent)))
        .collect();

    // 2. Candidate edges: k nearest neighbours per point found through a
    //    uniform grid (avoids the O(n^2) scan at NA scale).
    let candidates = knn_candidates(&pts, cfg.extent, 8);

    // 3. Kruskal: take a spanning tree from the shortest candidates first,
    //    then keep adding the next-shortest until the edge budget is met.
    let mut uf = UnionFind::new(bb as u32 as usize);
    let mut chosen: Vec<(u32, u32)> = Vec::with_capacity(backbone_edges);
    let mut used = std::collections::HashSet::new();
    for &(_, a, b) in &candidates {
        if chosen.len() == backbone_edges && uf.components() == 1 {
            break;
        }
        let key = (a.min(b), a.max(b));
        if used.contains(&key) {
            continue;
        }
        let joins = uf.union(a, b);
        if joins || chosen.len() < backbone_edges {
            used.insert(key);
            chosen.push((a, b));
        }
    }
    // The kNN graph is almost surely connected for uniform points; patch up
    // stragglers by wiring component representatives to their nearest
    // outside neighbour.
    while uf.components() > 1 {
        let (a, b) = nearest_cross_component_pair(&pts, &mut uf);
        uf.union(a, b);
        let key = (a.min(b), a.max(b));
        if used.insert(key) {
            chosen.push((a, b));
        }
    }
    // Over-budget can happen when connecting stragglers exceeded the goal;
    // trim non-tree extras (rare, small networks only).
    if chosen.len() > backbone_edges {
        trim_non_tree_edges(&mut chosen, bb, backbone_edges);
    }
    // Under-budget: add random chords.
    let mut attempts = 0;
    while chosen.len() < backbone_edges {
        attempts += 1;
        if attempts > backbone_edges * 50 + 1000 {
            return Err(NetworkError::InfeasibleTargets(
                "could not place enough backbone chords".to_string(),
            ));
        }
        let a = rng.random_range(0..bb as u32);
        let b = rng.random_range(0..bb as u32);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if used.insert(key) {
            chosen.push((a, b));
        }
    }

    // 4. Distribute subdivision nodes over backbone edges by length.
    let lengths: Vec<f64> = chosen
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = pts[a as usize];
            let (bx, by) = pts[b as usize];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        })
        .collect();
    let subdivisions = allocate_proportional(cfg.nodes - bb, &lengths);

    // 5. Materialise. Road class per backbone edge: longer segments are
    //    faster interstates, a few carry tolls.
    let mut b = NetworkBuilder::with_capacity(cfg.nodes, cfg.edges);
    let ids: Vec<crate::ids::NodeId> =
        pts.iter().map(|&(x, y)| b.add_node(crate::geometry::Point::new(x, y))).collect();
    let mut sorted_len: Vec<f64> = lengths.clone();
    sorted_len.sort_by(f64::total_cmp);
    let fast_cutoff = sorted_len[sorted_len.len() * 2 / 3];
    for (i, &(u, v)) in chosen.iter().enumerate() {
        let is_fast = lengths[i] >= fast_cutoff;
        let tolled = rng.random_range(0.0..1.0) < 0.07;
        let class = RoadClass {
            speed_kmh: if is_fast { 105.0 } else { 70.0 },
            toll_rate: if tolled { 0.05 } else { 0.01 },
            curvature: 1.02,
        };
        add_subdivided_edge(
            &mut b,
            &mut rng,
            ids[u as usize],
            pts[u as usize],
            ids[v as usize],
            pts[v as usize],
            subdivisions[i],
            class,
        );
    }
    let g = b.build();
    debug_assert_eq!(g.num_nodes(), cfg.nodes);
    debug_assert_eq!(g.num_edges(), cfg.edges);
    Ok(g)
}

/// Sorted `(distance², a, b)` candidate edges from a grid-accelerated kNN.
fn knn_candidates(pts: &[(f64, f64)], extent: f64, k: usize) -> Vec<(f64, u32, u32)> {
    let n = pts.len();
    let cells_per_side = ((n as f64).sqrt().ceil() as usize).max(1);
    let cell = (extent / cells_per_side as f64).max(1e-12);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        (
            ((x / cell) as usize).min(cells_per_side - 1),
            ((y / cell) as usize).min(cells_per_side - 1),
        )
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        buckets[cy * cells_per_side + cx].push(i as u32);
    }
    let mut out: Vec<(f64, u32, u32)> = Vec::with_capacity(n * k);
    let mut seen = std::collections::HashSet::new();
    let mut near: Vec<(f64, u32)> = Vec::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        near.clear();
        let (cx, cy) = cell_of(x, y);
        // Expand rings of cells until we have k candidates (plus one ring
        // of safety margin for correctness at the ring boundary).
        let mut ring = 1usize;
        loop {
            near.clear();
            let x0 = cx.saturating_sub(ring);
            let x1 = (cx + ring).min(cells_per_side - 1);
            let y0 = cy.saturating_sub(ring);
            let y1 = (cy + ring).min(cells_per_side - 1);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    for &j in &buckets[gy * cells_per_side + gx] {
                        if j as usize != i {
                            let (jx, jy) = pts[j as usize];
                            let d2 = (x - jx).powi(2) + (y - jy).powi(2);
                            near.push((d2, j));
                        }
                    }
                }
            }
            if near.len() >= k
                || (x0 == 0 && y0 == 0 && x1 == cells_per_side - 1 && y1 == cells_per_side - 1)
            {
                break;
            }
            ring += 1;
        }
        near.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(d2, j) in near.iter().take(k) {
            let key = ((i as u32).min(j), (i as u32).max(j));
            if seen.insert(key) {
                out.push((d2, key.0, key.1));
            }
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

/// Finds the closest pair of points spanning two different components
/// (brute force; only runs in the rare patch-up case).
fn nearest_cross_component_pair(pts: &[(f64, f64)], uf: &mut UnionFind) -> (u32, u32) {
    let n = pts.len();
    let mut best = (f64::INFINITY, 0u32, 1u32);
    for i in 0..n {
        for j in (i + 1)..n {
            if uf.find(i as u32) != uf.find(j as u32) {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 < best.0 {
                    best = (d2, i as u32, j as u32);
                }
            }
        }
    }
    (best.1, best.2)
}

/// Removes surplus edges while keeping the graph connected.
fn trim_non_tree_edges(chosen: &mut Vec<(u32, u32)>, n: usize, target: usize) {
    while chosen.len() > target {
        let mut removed = false;
        for idx in (0..chosen.len()).rev() {
            // Try removing edge idx; keep if still connected without it.
            let mut uf = UnionFind::new(n);
            for (j, &(a, b)) in chosen.iter().enumerate() {
                if j != idx {
                    uf.union(a, b);
                }
            }
            if uf.components() == 1 {
                chosen.swap_remove(idx);
                removed = true;
                break;
            }
        }
        if !removed {
            break; // every edge is a bridge; cannot trim further
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HighwayConfig {
        HighwayConfig { nodes: 800, edges: 830, backbone_nodes: 80, extent: 500.0, seed: 42 }
    }

    #[test]
    fn hits_exact_targets_and_is_connected() {
        let g = generate(&small_cfg()).unwrap();
        assert_eq!(g.num_nodes(), 800);
        assert_eq!(g.num_edges(), 830);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_cfg()).unwrap();
        let b = generate(&small_cfg()).unwrap();
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea).endpoints(), b.edge(eb).endpoints());
            assert_eq!(
                a.weight(ea, crate::graph::WeightKind::Distance),
                b.weight(eb, crate::graph::WeightKind::Distance)
            );
        }
        let c = generate(&HighwayConfig { seed: 43, ..small_cfg() }).unwrap();
        // Different seed, different layout (cheap smoke check).
        let same = a
            .edge_ids()
            .zip(c.edge_ids())
            .all(|(ea, ec)| a.edge(ea).endpoints() == c.edge(ec).endpoints());
        assert!(!same);
    }

    #[test]
    fn is_dominated_by_degree_two_chains() {
        let g = generate(&small_cfg()).unwrap();
        let deg2 = g.node_ids().filter(|&n| g.degree(n) == 2).count();
        assert!(
            deg2 as f64 > 0.8 * g.num_nodes() as f64,
            "highway networks should be mostly chains: {deg2}/{}",
            g.num_nodes()
        );
    }

    #[test]
    fn weights_dominate_euclidean_length() {
        let g = generate(&small_cfg()).unwrap();
        for e in g.edge_ids() {
            let w = g.weight(e, crate::graph::WeightKind::Distance).get();
            let l = g.euclidean_length(e);
            assert!(w >= l * 0.999, "edge {e:?}: weight {w} < euclid {l}");
        }
    }

    #[test]
    fn all_metrics_are_positive_where_distance_is() {
        let g = generate(&small_cfg()).unwrap();
        for e in g.edge_ids() {
            let d = g.weight(e, crate::graph::WeightKind::Distance).get();
            let t = g.weight(e, crate::graph::WeightKind::TravelTime).get();
            let toll = g.weight(e, crate::graph::WeightKind::Toll).get();
            if d > 0.0 {
                assert!(t > 0.0);
                assert!(toll > 0.0);
            }
        }
    }

    #[test]
    fn rejects_infeasible_targets() {
        let bad =
            HighwayConfig { nodes: 100, edges: 10, backbone_nodes: 50, extent: 10.0, seed: 1 };
        assert!(matches!(generate(&bad), Err(NetworkError::InfeasibleTargets(_))));
        let bad = HighwayConfig { nodes: 10, edges: 12, backbone_nodes: 40, extent: 10.0, seed: 1 };
        assert!(matches!(generate(&bad), Err(NetworkError::InfeasibleTargets(_))));
    }
}
