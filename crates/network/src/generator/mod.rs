//! Seeded synthetic road networks.
//!
//! The paper evaluates on three real datasets from Li's collection \[14\]:
//!
//! * **CA** — California highways: 21,048 nodes / 21,693 edges,
//! * **NA** — North-America highways: 175,813 nodes / 179,179 edges,
//! * **SF** — San Francisco streets: 174,956 nodes / 223,001 edges.
//!
//! Those files are not redistributable and this session is offline, so we
//! generate networks with the *same statistics that drive the paper's
//! effects*: exact node/edge counts, the long degree-2 chains typical of
//! highway data (edges/nodes ≈ 1.03), the denser lattice of a street map
//! (≈ 1.27), planar embeddings, and positive weights correlated with
//! Euclidean length (so the Euclidean baseline's lower bound is meaningful,
//! with controllable slack). See `ARCHITECTURE.md` (Design notes §4) for
//! the substitution argument.
//!
//! [`simple`] additionally provides tiny deterministic shapes (grids,
//! chains, rings) for unit and property tests.

pub mod continent;
pub mod datasets;
pub mod highway;
pub mod simple;
pub mod streets;

pub use datasets::Dataset;

use crate::graph::NetworkBuilder;
use crate::ids::NodeId;
use crate::weight::Weight;
use rand::{Rng, RngExt};

/// Proportional integer allocation by the largest-remainder method:
/// distributes `total` units over items with the given non-negative
/// weights; the result sums to exactly `total`.
pub(crate) fn allocate_proportional(total: usize, weights: &[f64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        // Degenerate: spread round-robin.
        let mut out = vec![total / weights.len(); weights.len()];
        for slot in out.iter_mut().take(total % weights.len()) {
            *slot += 1;
        }
        return out;
    }
    let mut out = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w / sum;
        let base = exact.floor() as usize;
        out.push(base);
        assigned += base;
        remainders.push((exact - base as f64, i));
    }
    let mut leftover = total - assigned;
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, i) in remainders {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    out
}

/// Road class parameters applied to one backbone segment.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RoadClass {
    /// km/h; converts distance to travel time.
    pub speed_kmh: f64,
    /// Toll charged per distance unit.
    pub toll_rate: f64,
    /// Multiplier ≥ 1 applied to Euclidean length to model curvature;
    /// keeping it ≥ 1 preserves "Euclidean is a lower bound of network
    /// distance", which the Euclidean baseline depends on.
    pub curvature: f64,
}

/// Adds a chain of `subdivisions` intermediate nodes between existing nodes
/// `from` and `to`, creating `subdivisions + 1` edges. Intermediate nodes
/// are placed along the segment with a small perpendicular jitter so the
/// embedding looks road-like rather than ruler-straight.
#[allow(clippy::too_many_arguments)]
pub(crate) fn add_subdivided_edge<R: Rng>(
    b: &mut NetworkBuilder,
    rng: &mut R,
    from: NodeId,
    from_xy: (f64, f64),
    to: NodeId,
    to_xy: (f64, f64),
    subdivisions: usize,
    class: RoadClass,
) {
    let (x0, y0) = from_xy;
    let (x1, y1) = to_xy;
    let dx = x1 - x0;
    let dy = y1 - y0;
    let seg_len = (dx * dx + dy * dy).sqrt();
    // Unit perpendicular; zero for coincident endpoints.
    let (px, py) = if seg_len > 0.0 { (-dy / seg_len, dx / seg_len) } else { (0.0, 0.0) };
    let jitter_amp = seg_len * 0.05;

    let mut prev = from;
    let mut prev_xy = crate::geometry::Point::new(x0, y0);
    for i in 0..subdivisions {
        let t = (i + 1) as f64 / (subdivisions + 1) as f64;
        let off = rng.random_range(-1.0..1.0) * jitter_amp;
        let p = crate::geometry::Point::new(x0 + dx * t + px * off, y0 + dy * t + py * off);
        let n = b.add_node(p);
        push_road_edge(b, rng, prev, prev_xy, n, p, class);
        prev = n;
        prev_xy = p;
    }
    push_road_edge(b, rng, prev, prev_xy, to, crate::geometry::Point::new(x1, y1), class);
}

pub(crate) fn push_road_edge<R: Rng>(
    b: &mut NetworkBuilder,
    rng: &mut R,
    a: NodeId,
    a_xy: crate::geometry::Point,
    c: NodeId,
    c_xy: crate::geometry::Point,
    class: RoadClass,
) {
    let euclid = a_xy.distance(c_xy);
    // Curvature jitter stays >= the class floor so admissibility holds.
    let distance = euclid * (class.curvature + rng.random_range(0.0..0.08));
    let speed = class.speed_kmh * rng.random_range(0.9..1.1);
    let travel_time = if speed > 0.0 { distance / speed * 60.0 } else { 0.0 };
    let toll = distance * class.toll_rate;
    b.add_edge_full(a, c, Weight::new(distance), Weight::new(travel_time), Weight::new(toll))
        .expect("generator produced an invalid edge");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_sums_to_total() {
        let alloc = allocate_proportional(10, &[1.0, 1.0, 1.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        let alloc = allocate_proportional(7, &[5.0, 1.0, 1.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 7);
        assert!(alloc[0] >= 4, "heavy item should get the lion's share: {alloc:?}");
    }

    #[test]
    fn allocation_handles_zero_weights() {
        let alloc = allocate_proportional(5, &[0.0, 0.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 5);
        assert!(allocate_proportional(3, &[]).is_empty());
    }

    #[test]
    fn allocation_is_deterministic() {
        let a = allocate_proportional(13, &[0.3, 0.3, 0.4]);
        let b = allocate_proportional(13, &[0.3, 0.3, 0.4]);
        assert_eq!(a, b);
    }
}
