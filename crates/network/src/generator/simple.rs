//! Tiny deterministic networks for tests, examples and property checks.

use crate::geometry::Point;
use crate::graph::{NetworkBuilder, RoadNetwork};
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A `w × h` lattice with uniform `spacing`; node `(x, y)` has id `y*w + x`.
pub fn grid(w: usize, h: usize, spacing: f64) -> RoadNetwork {
    assert!(w >= 1 && h >= 1);
    let mut b = NetworkBuilder::with_capacity(w * h, 2 * w * h);
    for y in 0..h {
        for x in 0..w {
            b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing));
        }
    }
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y), spacing).unwrap();
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1), spacing).unwrap();
            }
        }
    }
    b.build()
}

/// A straight chain of `n` nodes with uniform edge length.
pub fn chain(n: usize, edge_len: f64) -> RoadNetwork {
    assert!(n >= 1);
    let mut b = NetworkBuilder::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<NodeId> =
        (0..n).map(|i| b.add_node(Point::new(i as f64 * edge_len, 0.0))).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], edge_len).unwrap();
    }
    b.build()
}

/// A cycle of `n ≥ 3` nodes laid out on a circle.
pub fn ring(n: usize, edge_len: f64) -> RoadNetwork {
    assert!(n >= 3);
    let mut b = NetworkBuilder::with_capacity(n, n);
    let r = edge_len * n as f64 / std::f64::consts::TAU;
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            b.add_node(Point::new(r * a.cos(), r * a.sin()))
        })
        .collect();
    for i in 0..n {
        b.add_edge(ids[i], ids[(i + 1) % n], edge_len).unwrap();
    }
    b.build()
}

/// A connected random network: a random spanning tree over uniform points
/// plus `extra_edges` random chords. Edge weights equal Euclidean length
/// (plus a tiny epsilon so zero-length edges cannot occur). Deterministic
/// per seed; used heavily by property tests.
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> RoadNetwork {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::with_capacity(n, n - 1 + extra_edges);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
        .collect();
    let ids: Vec<NodeId> = pts.iter().map(|&p| b.add_node(p)).collect();
    // Random spanning tree: attach each node to a random earlier node.
    for i in 1..n {
        let j = rng.random_range(0..i);
        let w = pts[i].distance(pts[j]) + 0.001;
        b.add_edge(ids[i], ids[j], w).unwrap();
    }
    // Random chords, skipping duplicates/self-loops (best effort).
    let mut added = 0;
    let mut attempts = 0;
    let mut existing: std::collections::HashSet<(u32, u32)> = (1..n)
        .map(|_| (0, 0)) // placeholder replaced below
        .collect();
    existing.clear();
    while added < extra_edges && attempts < extra_edges * 20 + 40 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        let key = (i.min(j) as u32, i.max(j) as u32);
        if !existing.insert(key) {
            continue;
        }
        let w = pts[i].distance(pts[j]) + 0.001;
        if b.add_edge(ids[i], ids[j], w).is_ok() {
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_path_weight;
    use crate::graph::WeightKind;
    use crate::weight::Weight;

    #[test]
    fn grid_has_expected_shape() {
        let g = grid(4, 3, 2.0);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // h*(w-1) + (h-1)*w
        assert_eq!(g.connected_components(), 1);
        // Manhattan distance between corners.
        let d = shortest_path_weight(&g, WeightKind::Distance, NodeId(0), NodeId(11)).unwrap();
        assert_eq!(d, Weight::new(2.0 * 5.0));
    }

    #[test]
    fn chain_and_ring_shapes() {
        let c = chain(5, 1.5);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.degree(NodeId(0)), 1);
        assert_eq!(c.degree(NodeId(2)), 2);
        let r = ring(6, 1.0);
        assert_eq!(r.num_edges(), 6);
        assert!(r.node_ids().all(|n| r.degree(n) == 2));
        // Going around the short way: 6-node ring, opposite node = 3 hops.
        let d = shortest_path_weight(&r, WeightKind::Distance, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(d, Weight::new(3.0));
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..5 {
            let g = random_connected(40, 15, seed);
            assert_eq!(g.num_nodes(), 40);
            assert_eq!(g.connected_components(), 1);
            assert!(g.num_edges() >= 39);
            let g2 = random_connected(40, 15, seed);
            assert_eq!(g2.num_edges(), g.num_edges());
            // Same topology edge by edge.
            for (e1, e2) in g.edge_ids().zip(g2.edge_ids()) {
                assert_eq!(g.edge(e1).endpoints(), g2.edge(e2).endpoints());
            }
        }
    }

    #[test]
    fn single_node_graphs_work() {
        let g = chain(1, 1.0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = random_connected(1, 3, 7);
        assert_eq!(g.num_nodes(), 1);
    }
}
