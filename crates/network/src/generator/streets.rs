//! Street-grid network generator (SF analogue).
//!
//! City street maps are much denser than highway maps: SF has 174,956 nodes
//! and 223,001 edges (ratio 1.27). We start from a perturbed lattice, delete
//! a random subset of non-bridge edges (blocks, parks, one-ways collapsing)
//! and subdivide the remainder until node and edge targets are met exactly.
//! As in [`super::highway`], subdivision preserves `E - N`, so the lattice
//! dimensions and deletion count are solved from the targets up front.

use super::{add_subdivided_edge, allocate_proportional, RoadClass};
use crate::error::NetworkError;
use crate::graph::{NetworkBuilder, RoadNetwork};
use crate::unionfind::UnionFind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Targets and tuning for [`generate`].
#[derive(Clone, Debug)]
pub struct StreetsConfig {
    /// Exact number of nodes in the output.
    pub nodes: usize,
    /// Exact number of edges in the output.
    pub edges: usize,
    /// Side length of the square embedding region.
    pub extent: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a street-like network hitting the configured node and edge
/// counts exactly.
pub fn generate(cfg: &StreetsConfig) -> Result<RoadNetwork, NetworkError> {
    // Solve lattice dimensions: W*H nodes with 2WH - W - H edges, such that
    // after deleting down to E' = edges - S (S = nodes - WH subdivisions)
    // the deletion count is non-negative and a spanning tree survives.
    let side = ((cfg.nodes as f64 * 0.76).sqrt().floor() as usize).max(2);
    let (w, h) = (side, side);
    let n0 = w * h;
    if n0 > cfg.nodes {
        return Err(NetworkError::InfeasibleTargets(format!(
            "lattice {w}x{h} already exceeds {} nodes",
            cfg.nodes
        )));
    }
    let s = cfg.nodes - n0;
    if cfg.edges < s {
        return Err(NetworkError::InfeasibleTargets("more subdivisions than edges".into()));
    }
    let e_keep = cfg.edges - s;
    let e0 = 2 * w * h - w - h;
    if e_keep > e0 {
        return Err(NetworkError::InfeasibleTargets(format!(
            "need to keep {e_keep} lattice edges but only {e0} exist; \
             edge/node ratio too high for a street grid"
        )));
    }
    if e_keep < n0 - 1 {
        return Err(NetworkError::InfeasibleTargets(format!(
            "keeping {e_keep} edges cannot span {n0} lattice nodes"
        )));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let cell = cfg.extent / (side.max(2) - 1) as f64;

    // Perturbed lattice coordinates.
    let mut pts = Vec::with_capacity(n0);
    for y in 0..h {
        for x in 0..w {
            let jx = rng.random_range(-0.25..0.25) * cell;
            let jy = rng.random_range(-0.25..0.25) * cell;
            pts.push((x as f64 * cell + jx, y as f64 * cell + jy));
        }
    }
    let idx = |x: usize, y: usize| (y * w + x) as u32;

    // All lattice edges.
    let mut lattice: Vec<(u32, u32)> = Vec::with_capacity(e0);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                lattice.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                lattice.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    debug_assert_eq!(lattice.len(), e0);

    // Protect a random spanning tree, then keep a random subset of the
    // remaining edges to reach e_keep.
    lattice.shuffle(&mut rng);
    let mut uf = UnionFind::new(n0);
    let mut tree: Vec<(u32, u32)> = Vec::with_capacity(n0 - 1);
    let mut rest: Vec<(u32, u32)> = Vec::with_capacity(e0 - (n0 - 1));
    for &(a, b) in &lattice {
        if uf.union(a, b) {
            tree.push((a, b));
        } else {
            rest.push((a, b));
        }
    }
    let extra_needed = e_keep - tree.len();
    rest.truncate(extra_needed);
    let kept: Vec<(u32, u32)> = tree.into_iter().chain(rest).collect();
    debug_assert_eq!(kept.len(), e_keep);

    // Subdivisions by length.
    let lengths: Vec<f64> = kept
        .iter()
        .map(|&(a, b)| {
            let (ax, ay) = pts[a as usize];
            let (bx, by) = pts[b as usize];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        })
        .collect();
    let subdivisions = allocate_proportional(s, &lengths);

    // Materialise with street-grade road classes; a few arterials are
    // faster, nothing carries meaningful tolls.
    let mut b = NetworkBuilder::with_capacity(cfg.nodes, cfg.edges);
    let ids: Vec<crate::ids::NodeId> =
        pts.iter().map(|&(x, y)| b.add_node(crate::geometry::Point::new(x, y))).collect();
    for (i, &(u, v)) in kept.iter().enumerate() {
        let arterial = rng.random_range(0.0..1.0) < 0.1;
        let class = RoadClass {
            speed_kmh: if arterial { 60.0 } else { 35.0 },
            toll_rate: 0.005,
            curvature: 1.01,
        };
        add_subdivided_edge(
            &mut b,
            &mut rng,
            ids[u as usize],
            pts[u as usize],
            ids[v as usize],
            pts[v as usize],
            subdivisions[i],
            class,
        );
    }
    let g = b.build();
    debug_assert_eq!(g.num_nodes(), cfg.nodes);
    debug_assert_eq!(g.num_edges(), cfg.edges);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StreetsConfig {
        StreetsConfig { nodes: 1_000, edges: 1_280, extent: 100.0, seed: 7 }
    }

    #[test]
    fn hits_exact_targets_and_is_connected() {
        let g = generate(&small_cfg()).unwrap();
        assert_eq!(g.num_nodes(), 1_000);
        assert_eq!(g.num_edges(), 1_280);
        assert_eq!(g.connected_components(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_cfg()).unwrap();
        let b = generate(&small_cfg()).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edge_ids().zip(b.edge_ids()) {
            assert_eq!(a.edge(ea).endpoints(), b.edge(eb).endpoints());
        }
    }

    #[test]
    fn denser_than_highways() {
        let g = generate(&small_cfg()).unwrap();
        let deg4 = g.node_ids().filter(|&n| g.degree(n) >= 3).count();
        assert!(
            deg4 as f64 > 0.15 * g.num_nodes() as f64,
            "street grids should have many true intersections: {deg4}"
        );
    }

    #[test]
    fn weights_dominate_euclidean_length() {
        let g = generate(&small_cfg()).unwrap();
        for e in g.edge_ids() {
            let wgt = g.weight(e, crate::graph::WeightKind::Distance).get();
            let l = g.euclidean_length(e);
            assert!(wgt >= l * 0.999);
        }
    }

    #[test]
    fn rejects_infeasible_ratios() {
        // ratio ~3 cannot come from a lattice
        let bad = StreetsConfig { nodes: 100, edges: 300, extent: 10.0, seed: 1 };
        assert!(matches!(generate(&bad), Err(NetworkError::InfeasibleTargets(_))));
    }
}
