//! Planar geometry: points and axis-aligned rectangles.
//!
//! Node coordinates serve three purposes in the reproduction: the geometric
//! partitioning step (Section 3.3 adopts the geometric approach of Huang et
//! al. \[8\]), the Euclidean-bound baseline (Euclidean distance is a lower
//! bound of network distance), and the R-tree that baseline uses.

use std::fmt;

/// A point in the plane. Units are arbitrary but consistent per network.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when only comparing).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, `min` inclusive, `max` inclusive.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// The empty rectangle: contains nothing, unions as identity.
    pub const EMPTY: Rect = Rect {
        min: Point { x: f64::INFINITY, y: f64::INFINITY },
        max: Point { x: f64::NEG_INFINITY, y: f64::NEG_INFINITY },
    };

    /// Creates a rectangle from two corner points.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        Rect { min, max }
    }

    /// A rectangle covering exactly one point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Smallest rectangle covering all `points`; `EMPTY` when none.
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Rect {
        let mut r = Rect::EMPTY;
        for p in points {
            r = r.union_point(p);
        }
        r
    }

    /// `true` when this is the empty rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area (zero for empty or degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the classic R-tree enlargement metric.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Union with another rectangle.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Union with a single point.
    #[inline]
    pub fn union_point(&self, p: Point) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// `true` if the rectangles overlap (boundaries touching counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// `true` if `p` lies inside (boundaries inclusive).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Minimum Euclidean distance from `p` to this rectangle (0 if inside).
    #[inline]
    pub fn min_distance(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn lerp_interpolates() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn empty_rect_unions_as_identity() {
        let r = Rect::EMPTY;
        assert!(r.is_empty());
        let p = Point::new(1.0, 2.0);
        let u = r.union_point(p);
        assert_eq!(u.min, p);
        assert_eq!(u.max, p);
        assert_eq!(u.area(), 0.0);
    }

    #[test]
    fn covering_spans_all_points() {
        let r = Rect::covering([Point::new(0.0, 5.0), Point::new(2.0, 1.0), Point::new(-1.0, 3.0)]);
        assert_eq!(r.min, Point::new(-1.0, 1.0));
        assert_eq!(r.max, Point::new(2.0, 5.0));
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.margin(), 7.0);
    }

    #[test]
    fn intersection_and_containment() {
        let a = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Rect::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_point(Point::new(1.0, 1.0)));
        assert!(!a.contains_point(Point::new(2.1, 1.0)));
    }

    #[test]
    fn min_distance_to_rect() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(r.min_distance(Point::new(1.0, 1.0)), 0.0); // inside
        assert_eq!(r.min_distance(Point::new(5.0, 2.0)), 3.0); // right of
        assert_eq!(r.min_distance(Point::new(5.0, 6.0)), 5.0); // diagonal
    }
}
