//! The road-network graph.
//!
//! A road network is modelled exactly as in Section 3.1 of the paper: an
//! undirected weighted graph `N = (N, E)` where nodes are road intersections
//! with planar coordinates and edges are road segments with positive
//! weights. Every edge carries three weight metrics at once — travel
//! *distance*, *trip time* and *toll* — because a core selling point of the
//! ROAD framework is that shortcuts can be customised per metric.
//!
//! The structure is mutable: the maintenance experiments (Section 5.2)
//! change edge weights, add edges and delete edges at runtime. Deleted
//! edges are tombstoned so that `EdgeId`s remain stable.

use crate::error::NetworkError;
use crate::geometry::{Point, Rect};
use crate::ids::{EdgeId, NodeId};
use crate::weight::Weight;

/// Which per-edge metric a search or index should use.
///
/// The paper's LDSQ definition singles the distance condition out from other
/// attributes; `WeightKind` selects what "distance" means.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum WeightKind {
    /// Physical length of the road segment.
    #[default]
    Distance,
    /// Time to traverse the segment.
    TravelTime,
    /// Monetary cost (tolls); zero on most edges.
    Toll,
}

impl WeightKind {
    /// All supported metrics, handy for exhaustive tests.
    pub const ALL: [WeightKind; 3] =
        [WeightKind::Distance, WeightKind::TravelTime, WeightKind::Toll];
}

/// One road segment.
#[derive(Clone, Debug)]
pub struct EdgeRecord {
    a: NodeId,
    b: NodeId,
    distance: Weight,
    travel_time: Weight,
    toll: Weight,
    deleted: bool,
}

impl EdgeRecord {
    /// The two endpoints `(n, n')` in insertion order.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Weight under the given metric.
    #[inline]
    pub fn weight(&self, kind: WeightKind) -> Weight {
        match kind {
            WeightKind::Distance => self.distance,
            WeightKind::TravelTime => self.travel_time,
            WeightKind::Toll => self.toll,
        }
    }

    /// Whether the edge has been removed from the network.
    #[inline]
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }
}

#[derive(Clone, Copy, Debug)]
struct AdjEntry {
    edge: EdgeId,
    to: NodeId,
}

/// An undirected, multi-metric, mutable road network.
#[derive(Clone)]
pub struct RoadNetwork {
    coords: Vec<Point>,
    edges: Vec<EdgeRecord>,
    adj: Vec<Vec<AdjEntry>>,
    live_edges: usize,
}

impl RoadNetwork {
    /// Starts an incremental builder.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of live (non-deleted) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Number of edge slots including tombstones; `EdgeId`s range over this.
    #[inline]
    pub fn edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Coordinates of a node.
    #[inline]
    pub fn coord(&self, n: NodeId) -> Point {
        self.coords[n.index()]
    }

    /// The full edge record (including tombstones).
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &EdgeRecord {
        &self.edges[e.index()]
    }

    /// Weight of a live edge under `kind`.
    #[inline]
    pub fn weight(&self, e: EdgeId, kind: WeightKind) -> Weight {
        self.edges[e.index()].weight(kind)
    }

    /// The endpoint of `e` that is not `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let rec = &self.edges[e.index()];
        if rec.a == n {
            rec.b
        } else {
            debug_assert_eq!(rec.b, n, "{n} is not an endpoint of {e}");
            rec.a
        }
    }

    /// Degree of a node (live edges only).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Iterates the live incident edges of `n` as `(edge, neighbour)` pairs.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adj[n.index()].iter().map(|a| (a.edge, a.to))
    }

    /// All node ids.
    #[inline]
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.coords.len() as u32).map(NodeId)
    }

    /// All live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().enumerate().filter(|(_, rec)| !rec.deleted).map(|(i, _)| EdgeId(i as u32))
    }

    /// The live edge between `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adj[a.index()].iter().find(|entry| entry.to == b).map(|entry| entry.edge)
    }

    /// Bounding rectangle of all node coordinates.
    pub fn bounding_rect(&self) -> Rect {
        Rect::covering(self.coords.iter().copied())
    }

    /// Straight-line length of an edge from its endpoint coordinates.
    #[inline]
    pub fn euclidean_length(&self, e: EdgeId) -> f64 {
        let (a, b) = self.edges[e.index()].endpoints();
        self.coord(a).distance(self.coord(b))
    }

    /// Euclidean distance between two nodes.
    #[inline]
    pub fn euclidean(&self, a: NodeId, b: NodeId) -> f64 {
        self.coord(a).distance(self.coord(b))
    }

    /// Changes one metric of a live edge; returns the previous value.
    ///
    /// This is the primitive behind the paper's "change of edge distance"
    /// maintenance scenario (Section 5.2.1).
    pub fn set_weight(
        &mut self,
        e: EdgeId,
        kind: WeightKind,
        w: Weight,
    ) -> Result<Weight, NetworkError> {
        let rec = self.edges.get_mut(e.index()).ok_or(NetworkError::EdgeOutOfBounds(e))?;
        if rec.deleted {
            return Err(NetworkError::EdgeDeleted(e));
        }
        let slot = match kind {
            WeightKind::Distance => &mut rec.distance,
            WeightKind::TravelTime => &mut rec.travel_time,
            WeightKind::Toll => &mut rec.toll,
        };
        Ok(std::mem::replace(slot, w))
    }

    /// Adds a new edge between existing nodes; returns its id.
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        distance: Weight,
        travel_time: Weight,
        toll: Weight,
    ) -> Result<EdgeId, NetworkError> {
        if a.index() >= self.coords.len() {
            return Err(NetworkError::NodeOutOfBounds(a));
        }
        if b.index() >= self.coords.len() {
            return Err(NetworkError::NodeOutOfBounds(b));
        }
        if a == b {
            return Err(NetworkError::SelfLoop(a));
        }
        if self.edge_between(a, b).is_some() {
            return Err(NetworkError::DuplicateEdge(a, b));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { a, b, distance, travel_time, toll, deleted: false });
        self.adj[a.index()].push(AdjEntry { edge: id, to: b });
        self.adj[b.index()].push(AdjEntry { edge: id, to: a });
        self.live_edges += 1;
        Ok(id)
    }

    /// Adds a new isolated node; returns its id. Used when road construction
    /// introduces new intersections.
    pub fn add_node(&mut self, at: Point) -> NodeId {
        let id = NodeId(self.coords.len() as u32);
        self.coords.push(at);
        self.adj.push(Vec::new());
        id
    }

    /// Removes (tombstones) a live edge. The id stays allocated.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<(), NetworkError> {
        let rec = self.edges.get_mut(e.index()).ok_or(NetworkError::EdgeOutOfBounds(e))?;
        if rec.deleted {
            return Err(NetworkError::EdgeDeleted(e));
        }
        rec.deleted = true;
        let (a, b) = (rec.a, rec.b);
        self.adj[a.index()].retain(|entry| entry.edge != e);
        self.adj[b.index()].retain(|entry| entry.edge != e);
        self.live_edges -= 1;
        Ok(())
    }

    /// Restores a previously removed edge with its stored weights.
    pub fn restore_edge(&mut self, e: EdgeId) -> Result<(), NetworkError> {
        let rec = self.edges.get_mut(e.index()).ok_or(NetworkError::EdgeOutOfBounds(e))?;
        if !rec.deleted {
            return Ok(());
        }
        rec.deleted = false;
        let (a, b) = (rec.a, rec.b);
        self.adj[a.index()].push(AdjEntry { edge: e, to: b });
        self.adj[b.index()].push(AdjEntry { edge: e, to: a });
        self.live_edges += 1;
        Ok(())
    }

    /// Number of connected components (over live edges).
    pub fn connected_components(&self) -> usize {
        let n = self.num_nodes();
        if n == 0 {
            return 0;
        }
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(NodeId(start as u32));
            while let Some(u) = stack.pop() {
                for (_, v) in self.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
        }
        components
    }

    /// Errors unless the network is a single connected component.
    pub fn require_connected(&self) -> Result<(), NetworkError> {
        match self.connected_components() {
            0 | 1 => Ok(()),
            c => Err(NetworkError::Disconnected { components: c }),
        }
    }

    /// Sum of all live edge weights under `kind`.
    pub fn total_weight(&self, kind: WeightKind) -> Weight {
        let mut total = Weight::ZERO;
        for e in self.edge_ids() {
            total += self.weight(e, kind);
        }
        total
    }
}

impl std::fmt::Debug for RoadNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoadNetwork")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Incremental builder for [`RoadNetwork`].
#[derive(Default)]
pub struct NetworkBuilder {
    coords: Vec<Point>,
    edges: Vec<EdgeRecord>,
}

impl NetworkBuilder {
    /// Pre-allocates for the expected sizes.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        NetworkBuilder { coords: Vec::with_capacity(nodes), edges: Vec::with_capacity(edges) }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = NodeId(self.coords.len() as u32);
        self.coords.push(p);
        id
    }

    /// Adds an edge whose three metrics are all `distance` (tests and simple
    /// examples rarely care about time/toll).
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        distance: f64,
    ) -> Result<EdgeId, NetworkError> {
        let w = Weight::try_new(distance)?;
        self.add_edge_full(a, b, w, w, Weight::ZERO)
    }

    /// Adds an edge with explicit per-metric weights.
    pub fn add_edge_full(
        &mut self,
        a: NodeId,
        b: NodeId,
        distance: Weight,
        travel_time: Weight,
        toll: Weight,
    ) -> Result<EdgeId, NetworkError> {
        if a.index() >= self.coords.len() {
            return Err(NetworkError::NodeOutOfBounds(a));
        }
        if b.index() >= self.coords.len() {
            return Err(NetworkError::NodeOutOfBounds(b));
        }
        if a == b {
            return Err(NetworkError::SelfLoop(a));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { a, b, distance, travel_time, toll, deleted: false });
        Ok(id)
    }

    /// Finalises the network, building adjacency lists.
    pub fn build(self) -> RoadNetwork {
        let mut adj: Vec<Vec<AdjEntry>> = vec![Vec::new(); self.coords.len()];
        // First pass counts degrees so each adjacency vector is allocated
        // exactly once (perf-book: reserve when the final length is known).
        let mut degree = vec![0u32; self.coords.len()];
        for rec in &self.edges {
            degree[rec.a.index()] += 1;
            degree[rec.b.index()] += 1;
        }
        for (v, d) in adj.iter_mut().zip(degree) {
            v.reserve_exact(d as usize);
        }
        for (i, rec) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            adj[rec.a.index()].push(AdjEntry { edge: id, to: rec.b });
            adj[rec.b.index()].push(AdjEntry { edge: id, to: rec.a });
        }
        let live_edges = self.edges.len();
        RoadNetwork { coords: self.coords, edges: self.edges, adj, live_edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 1.0));
        b.add_edge(n0, n1, 1.0).unwrap();
        b.add_edge(n1, n2, 2.0).unwrap();
        b.add_edge(n2, n0, 3.0).unwrap();
        b.build()
    }

    #[test]
    fn builder_produces_symmetric_adjacency() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        for n in g.node_ids() {
            assert_eq!(g.degree(n), 2);
            for (e, m) in g.neighbors(n) {
                assert_eq!(g.other_endpoint(e, n), m);
                // the reverse direction exists too
                assert!(g.neighbors(m).any(|(e2, n2)| e2 == e && n2 == n));
            }
        }
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(b.add_edge(n0, n0, 1.0).unwrap_err(), NetworkError::SelfLoop(n0));
        assert_eq!(
            b.add_edge(n0, NodeId(9), 1.0).unwrap_err(),
            NetworkError::NodeOutOfBounds(NodeId(9))
        );
        assert!(matches!(b.add_edge(n0, n0, f64::NAN), Err(NetworkError::InvalidWeight(_))));
    }

    #[test]
    fn weights_are_per_metric() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let e =
            b.add_edge_full(n0, n1, Weight::new(10.0), Weight::new(2.0), Weight::new(0.5)).unwrap();
        let g = b.build();
        assert_eq!(g.weight(e, WeightKind::Distance), Weight::new(10.0));
        assert_eq!(g.weight(e, WeightKind::TravelTime), Weight::new(2.0));
        assert_eq!(g.weight(e, WeightKind::Toll), Weight::new(0.5));
    }

    #[test]
    fn set_weight_replaces_and_returns_old() {
        let mut g = triangle();
        let e = EdgeId(0);
        let old = g.set_weight(e, WeightKind::Distance, Weight::new(9.0)).unwrap();
        assert_eq!(old, Weight::new(1.0));
        assert_eq!(g.weight(e, WeightKind::Distance), Weight::new(9.0));
    }

    #[test]
    fn remove_and_restore_edge() {
        let mut g = triangle();
        let e = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        g.remove_edge(e).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.edge_between(NodeId(0), NodeId(1)).is_none());
        assert!(g.edge(e).is_deleted());
        assert_eq!(g.remove_edge(e).unwrap_err(), NetworkError::EdgeDeleted(e));
        // EdgeIds of other edges are unaffected.
        assert_eq!(g.edge(EdgeId(1)).endpoints(), (NodeId(1), NodeId(2)));
        g.restore_edge(e).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_between(NodeId(0), NodeId(1)), Some(e));
    }

    #[test]
    fn add_edge_and_node_at_runtime() {
        let mut g = triangle();
        let n3 = g.add_node(Point::new(2.0, 2.0));
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(n3), 0);
        let e =
            g.add_edge(NodeId(0), n3, Weight::new(4.0), Weight::new(4.0), Weight::ZERO).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.other_endpoint(e, n3), NodeId(0));
        assert!(matches!(
            g.add_edge(NodeId(0), n3, Weight::ZERO, Weight::ZERO, Weight::ZERO),
            Err(NetworkError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn connectivity_counts_components() {
        let mut b = RoadNetwork::builder();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let _n2 = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(n0, n1, 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.connected_components(), 2);
        assert!(matches!(g.require_connected(), Err(NetworkError::Disconnected { components: 2 })));
        let t = triangle();
        assert_eq!(t.connected_components(), 1);
        assert!(t.require_connected().is_ok());
    }

    #[test]
    fn geometry_helpers() {
        let g = triangle();
        assert_eq!(g.euclidean(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(g.euclidean_length(EdgeId(0)), 1.0);
        let r = g.bounding_rect();
        assert_eq!(r.min, Point::new(0.0, 0.0));
        assert_eq!(r.max, Point::new(1.0, 1.0));
    }

    #[test]
    fn total_weight_sums_live_edges() {
        let mut g = triangle();
        assert_eq!(g.total_weight(WeightKind::Distance), Weight::new(6.0));
        g.remove_edge(EdgeId(2)).unwrap();
        assert_eq!(g.total_weight(WeightKind::Distance), Weight::new(3.0));
    }
}
