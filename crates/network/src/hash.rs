//! Fast hashing for integer-keyed maps.
//!
//! SipHash (the std default) is overkill for dense `u32` ids that cannot be
//! attacker-controlled; the multiply-xor scheme below (the widely used
//! "Fx" construction from the Firefox/rustc codebases) is several times
//! faster on the small keys that dominate graph workloads. We implement it
//! locally instead of pulling in `rustc-hash`, keeping the offline
//! dependency set minimal.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-xor hasher.
#[derive(Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Initial hasher state. Normally 0 (the classic Fx construction, fully
/// deterministic across processes). Under the `shuffle-hasher` test
/// feature it is drawn once per process from the OS (via std's
/// `RandomState`), which shuffles every `FastMap`/`FastSet` bucket order:
/// CI re-runs the byte-equality proptests under it, so any hash-order
/// dependence the static prover's escape hatches might hide breaks the
/// build instead of shipping.
#[cfg(feature = "shuffle-hasher")]
fn initial_state() -> u64 {
    use std::hash::BuildHasher;
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| std::collections::hash_map::RandomState::new().build_hasher().finish())
}

#[cfg(not(feature = "shuffle-hasher"))]
fn initial_state() -> u64 {
    0
}

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher { hash: initial_state() }
    }
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn fast_set_with_capacity<K>(cap: usize) -> FastSet<K> {
    FastSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_like_hashmap() {
        let mut m: FastMap<u32, &str> = FastMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        // Not a rigorous test of hash quality, just a guard against a
        // catastrophic implementation bug (e.g. hashing everything to 0).
        let mut seen = FastSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn initial_state_is_stable_within_a_process() {
        let a = FxHasher::default().finish();
        let b = FxHasher::default().finish();
        assert_eq!(a, b);
        // Without the shuffle feature the construction is the classic
        // zero-seeded Fx, deterministic across processes and platforms.
        #[cfg(not(feature = "shuffle-hasher"))]
        assert_eq!(a, 0);
    }

    #[test]
    fn byte_stream_hashing_handles_remainders() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
