//! Strongly-typed identifiers for network entities.
//!
//! Nodes and edges are dense `u32` indexes into the arrays of a
//! [`crate::graph::RoadNetwork`]. Newtypes keep the two id spaces from being
//! mixed up at compile time while staying `Copy` and 4 bytes wide, which
//! matters for the adjacency arrays traversed in every query.

use std::fmt;

/// Identifier of a network node (a road intersection).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of a network edge (a road segment).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", EdgeId(9)), "e9");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(3) > EdgeId(2));
    }

    #[test]
    fn ids_are_4_bytes() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
    }
}
