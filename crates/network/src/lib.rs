//! # road-network
//!
//! Road-network graph substrate for the ROAD framework (Lee, Lee & Zheng,
//! *Fast Object Search on Road Networks*, EDBT 2009).
//!
//! This crate provides everything the framework and its baselines need from
//! the underlying network:
//!
//! * [`graph::RoadNetwork`] — an undirected weighted graph with coordinates
//!   and multiple edge-weight metrics (travel distance, trip time, toll);
//! * [`dijkstra`] / [`astar`] — network-expansion primitives (visitor-based
//!   Dijkstra, one-to-one / one-to-many variants, A* with a Euclidean
//!   admissible heuristic);
//! * [`csr`] / [`contractor`] — flat CSR adjacency arenas and node
//!   contraction with bounded witness search, the fast path for shortcut
//!   construction;
//! * [`partition`] — edge-disjoint graph partitioning (geometric bisection
//!   refined by a Kernighan–Lin pass) used to form Rnets;
//! * [`generator`] — seeded synthetic road networks calibrated to the
//!   paper's three real datasets (CA / NA / SF), plus small shapes for
//!   testing.
//!
//! The crate is dependency-light and entirely deterministic for a given
//! seed, which keeps every experiment in the workspace reproducible.

pub mod astar;
pub mod contractor;
pub mod csr;
pub mod dijkstra;
pub mod error;
pub mod generator;
pub mod geometry;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod partition;
pub mod path;
pub mod unionfind;
pub mod weight;

pub use error::NetworkError;
pub use geometry::{Point, Rect};
pub use graph::{EdgeRecord, NetworkBuilder, RoadNetwork, WeightKind};
pub use ids::{EdgeId, NodeId};
pub use path::Path;
pub use weight::Weight;
