//! Edge-disjoint graph partitioning for Rnet formation.
//!
//! Section 3.3 of the paper: an ideal partitioning produces equal-sized
//! Rnets while minimising border nodes, which is NP-complete \[15\]; the
//! authors adopt the *geometric approach* of Huang et al. \[8\] to coarsely
//! split the edge set in two, then the *Kernighan–Lin algorithm* \[12\] to
//! exchange edges between the halves until border nodes stop decreasing.
//! With partition fanout `p = 2^x`, binary partitioning is applied
//! recursively `x` times.
//!
//! Partitions here are over **edges** (Definition 4: the edge sets of
//! sibling Rnets are disjoint; nodes shared between parts become border
//! nodes). The unit moved by KL is therefore an edge, and the cost function
//! is the number of *internal border nodes*: nodes incident to edges of
//! both halves.

use crate::graph::RoadNetwork;
use crate::hash::FastMap;
use crate::ids::{EdgeId, NodeId};

/// Tuning knobs for the bisection.
#[derive(Clone, Debug)]
pub struct PartitionOptions {
    /// Number of Kernighan–Lin improvement passes over the cut.
    pub kl_passes: usize,
    /// Each side must keep at least this fraction of the edges.
    pub min_balance: f64,
    /// Upper bound on tentative moves per KL pass (0 = automatic).
    pub move_cap: usize,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions { kl_passes: 3, min_balance: 0.40, move_cap: 0 }
    }
}

/// Splits `edges` into `parts` (a power of two) groups by recursive
/// geometric bisection + KL refinement. Returns one part index per input
/// edge, in input order.
///
/// # Panics
/// Panics if `parts` is zero or not a power of two.
pub fn partition_edges(
    g: &RoadNetwork,
    edges: &[EdgeId],
    parts: usize,
    opts: &PartitionOptions,
) -> Vec<u16> {
    assert!(parts > 0 && parts.is_power_of_two(), "fanout must be a power of two, got {parts}");
    assert!(parts <= u16::MAX as usize + 1, "fanout too large");
    let mut assignment = vec![0u16; edges.len()];
    if parts == 1 || edges.len() <= 1 {
        return assignment;
    }
    // Recursive binary splitting: each round doubles the number of parts.
    let rounds = parts.trailing_zeros();
    let mut groups: Vec<Vec<u32>> = vec![(0..edges.len() as u32).collect()];
    for _ in 0..rounds {
        let mut next: Vec<Vec<u32>> = Vec::with_capacity(groups.len() * 2);
        for group in groups {
            if group.len() <= 1 {
                // Degenerate group: it still occupies two part slots so that
                // part numbering stays aligned with the recursion shape.
                next.push(group);
                next.push(Vec::new());
                continue;
            }
            let subset: Vec<EdgeId> = group.iter().map(|&i| edges[i as usize]).collect();
            let side = bisect(g, &subset, opts);
            let mut left = Vec::new();
            let mut right = Vec::new();
            for (pos, &idx) in group.iter().enumerate() {
                if side[pos] {
                    right.push(idx);
                } else {
                    left.push(idx);
                }
            }
            next.push(left);
            next.push(right);
        }
        groups = next;
    }
    for (part, group) in groups.iter().enumerate() {
        for &idx in group {
            assignment[idx as usize] = part as u16;
        }
    }
    assignment
}

/// Bisects an edge set: `false` = left half, `true` = right half.
pub fn bisect(g: &RoadNetwork, edges: &[EdgeId], opts: &PartitionOptions) -> Vec<bool> {
    let mut side = geometric_split(g, edges);
    kl_refine(g, edges, &mut side, opts);
    side
}

/// The geometric half: order edges by their midpoint along the wider axis
/// of the bounding box and cut the sorted order in the middle, giving two
/// spatially coherent halves with equal edge counts.
fn geometric_split(g: &RoadNetwork, edges: &[EdgeId]) -> Vec<bool> {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mids: Vec<(f64, f64)> = edges
        .iter()
        .map(|&e| {
            let (a, b) = g.edge(e).endpoints();
            let m = g.coord(a).midpoint(g.coord(b));
            min_x = min_x.min(m.x);
            max_x = max_x.max(m.x);
            min_y = min_y.min(m.y);
            max_y = max_y.max(m.y);
            (m.x, m.y)
        })
        .collect();
    let use_x = (max_x - min_x) >= (max_y - min_y);
    let mut order: Vec<u32> = (0..edges.len() as u32).collect();
    order.sort_by(|&i, &j| {
        let a = if use_x { mids[i as usize].0 } else { mids[i as usize].1 };
        let b = if use_x { mids[j as usize].0 } else { mids[j as usize].1 };
        a.total_cmp(&b).then(i.cmp(&j))
    });
    let mut side = vec![false; edges.len()];
    for &i in &order[edges.len() / 2..] {
        side[i as usize] = true;
    }
    side
}

/// Node bookkeeping for the KL pass: how many incident region edges lie on
/// each side, plus the explicit set of current border nodes so the move
/// loop never scans interior nodes.
struct SideCounts {
    counts: FastMap<u32, [u32; 2]>,
    border: crate::hash::FastSet<u32>,
}

impl SideCounts {
    fn build(g: &RoadNetwork, edges: &[EdgeId], side: &[bool]) -> Self {
        let mut counts: FastMap<u32, [u32; 2]> = FastMap::default();
        for (i, &e) in edges.iter().enumerate() {
            let s = side[i] as usize;
            let (a, b) = g.edge(e).endpoints();
            counts.entry(a.0).or_insert([0, 0])[s] += 1;
            counts.entry(b.0).or_insert([0, 0])[s] += 1;
        }
        let border = counts.iter().filter(|(_, c)| c[0] > 0 && c[1] > 0).map(|(&n, _)| n).collect();
        SideCounts { counts, border }
    }

    /// Snapshot of the current border nodes.
    fn border_nodes(&self) -> Vec<u32> {
        self.border.iter().copied().collect()
    }

    /// Border-count delta caused by flipping one incident edge of `n` from
    /// side `s` to side `1 - s`.
    #[inline]
    fn flip_delta(&self, n: NodeId, s: usize) -> i64 {
        let c = self.counts[&n.0];
        let before = (c[0] > 0 && c[1] > 0) as i64;
        let mut after = c;
        after[s] -= 1;
        after[1 - s] += 1;
        let after = (after[0] > 0 && after[1] > 0) as i64;
        after - before
    }

    #[inline]
    fn apply_flip(&mut self, n: NodeId, s: usize) {
        let c = self.counts.get_mut(&n.0).unwrap();
        c[s] -= 1;
        c[1 - s] += 1;
        if c[0] > 0 && c[1] > 0 {
            self.border.insert(n.0);
        } else {
            self.border.remove(&n.0);
        }
    }

    fn border_count(&self) -> usize {
        self.border.len()
    }
}

/// Kernighan–Lin refinement: repeatedly build a chain of tentative
/// best-gain edge moves (allowing interim losses), then keep the prefix
/// with the highest cumulative gain. Stops when a pass yields no
/// improvement, i.e. "until further exchanges do not reduce the number of
/// border nodes".
fn kl_refine(g: &RoadNetwork, edges: &[EdgeId], side: &mut [bool], opts: &PartitionOptions) {
    if edges.len() < 4 {
        return;
    }
    let move_cap = if opts.move_cap > 0 {
        opts.move_cap
    } else {
        ((edges.len() as f64).sqrt() as usize) * 4 + 64
    };
    let min_side = ((edges.len() as f64) * opts.min_balance).floor() as i64;

    // Per-node incident-edge index within the region (built once; the
    // candidate scan below walks only edges touching current border
    // nodes, keeping each move O(border) instead of O(|edges|)).
    let mut incident: FastMap<u32, Vec<u32>> = FastMap::default();
    for (i, &e) in edges.iter().enumerate() {
        let (a, b) = g.edge(e).endpoints();
        incident.entry(a.0).or_default().push(i as u32);
        if b != a {
            incident.entry(b.0).or_default().push(i as u32);
        }
    }

    for _pass in 0..opts.kl_passes {
        let mut counts = SideCounts::build(g, edges, side);
        let mut locked = vec![false; edges.len()];
        let mut side_sizes = [0i64; 2];
        for &s in side.iter() {
            side_sizes[s as usize] += 1;
        }

        let gain_of = |counts: &SideCounts, side: &[bool], i: usize| -> i64 {
            let (a, b) = g.edge(edges[i]).endpoints();
            let s = side[i] as usize;
            if a == b {
                return 0;
            }
            -(counts.flip_delta(a, s) + counts.flip_delta(b, s))
        };

        // Chain of tentative moves.
        let mut moved: Vec<u32> = Vec::new();
        let mut cumulative = 0i64;
        let mut best_cumulative = 0i64;
        let mut best_len = 0usize;

        for _step in 0..move_cap {
            // Candidates: unlocked edges touching a current border node.
            let mut best: Option<(i64, usize)> = None;
            for node in counts.border_nodes() {
                let Some(edge_list) = incident.get(&node) else { continue };
                for &iu in edge_list {
                    let i = iu as usize;
                    if locked[i] {
                        continue;
                    }
                    let s = side[i] as usize;
                    if side_sizes[s] - 1 < min_side {
                        continue; // would unbalance
                    }
                    let gain = gain_of(&counts, side, i);
                    if best.map(|(bg, _)| gain > bg).unwrap_or(true) {
                        best = Some((gain, i));
                    }
                }
            }
            let Some((gain, i)) = best else { break };
            // Apply tentatively.
            let s = side[i] as usize;
            let (a, b) = g.edge(edges[i]).endpoints();
            counts.apply_flip(a, s);
            counts.apply_flip(b, s);
            side[i] = !side[i];
            side_sizes[s] -= 1;
            side_sizes[1 - s] += 1;
            locked[i] = true;
            moved.push(i as u32);
            cumulative += gain;
            if cumulative > best_cumulative {
                best_cumulative = cumulative;
                best_len = moved.len();
            }
            // Heuristic early stop: deep negative chains rarely recover.
            if cumulative < best_cumulative - 8 {
                break;
            }
        }

        // Roll back past the best prefix.
        for &i in moved[best_len..].iter() {
            side[i as usize] = !side[i as usize];
        }
        if best_cumulative <= 0 {
            break; // pass did not improve the cut
        }
    }
}

/// Number of nodes incident to edges on both sides — the KL objective.
pub fn internal_border_count(g: &RoadNetwork, edges: &[EdgeId], side: &[bool]) -> usize {
    SideCounts::build(g, edges, side).border_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::simple;

    fn all_edges(g: &RoadNetwork) -> Vec<EdgeId> {
        g.edge_ids().collect()
    }

    #[test]
    fn bisection_balances_edge_counts() {
        let g = simple::grid(8, 8, 1.0);
        let edges = all_edges(&g);
        let side = bisect(&g, &edges, &PartitionOptions::default());
        let right = side.iter().filter(|&&s| s).count();
        let left = side.len() - right;
        let min = (side.len() as f64 * 0.40) as usize;
        assert!(left >= min && right >= min, "unbalanced: {left}/{right}");
    }

    #[test]
    fn kl_does_not_worsen_geometric_cut() {
        let g = simple::grid(10, 10, 1.0);
        let edges = all_edges(&g);
        let geo = geometric_split(&g, &edges);
        let geo_cost = internal_border_count(&g, &edges, &geo);
        let refined = bisect(&g, &edges, &PartitionOptions::default());
        let refined_cost = internal_border_count(&g, &edges, &refined);
        assert!(refined_cost <= geo_cost, "KL worsened the cut: {refined_cost} > {geo_cost}");
    }

    #[test]
    fn grid_bisection_border_is_roughly_one_column() {
        // A 12x12 unit grid cut in half should have a border close to one
        // grid line (12 nodes), certainly far less than half the nodes.
        let g = simple::grid(12, 12, 1.0);
        let edges = all_edges(&g);
        let side = bisect(&g, &edges, &PartitionOptions::default());
        let cost = internal_border_count(&g, &edges, &side);
        assert!(cost <= 24, "border too fat: {cost}");
        assert!(cost >= 12 - 4, "suspiciously thin border: {cost}");
    }

    #[test]
    fn partition_into_four_covers_all_edges_disjointly() {
        let g = simple::grid(9, 9, 1.0);
        let edges = all_edges(&g);
        let parts = partition_edges(&g, &edges, 4, &PartitionOptions::default());
        assert_eq!(parts.len(), edges.len());
        let mut counts = [0usize; 4];
        for &p in &parts {
            assert!(p < 4);
            counts[p as usize] += 1;
        }
        // Every part holds a reasonable share (Definition 4: non-empty, and
        // the paper aims at equal-sized Rnets).
        let min = edges.len() / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(c >= min, "part {i} too small: {c} of {}", edges.len());
        }
    }

    #[test]
    fn chain_partition_cuts_at_articulation_points() {
        // A 16-node chain has 15 edges; a perfect bisection has exactly one
        // border node in the middle.
        let g = simple::chain(16, 1.0);
        let edges = all_edges(&g);
        let side = bisect(&g, &edges, &PartitionOptions::default());
        let cost = internal_border_count(&g, &edges, &side);
        assert_eq!(cost, 1, "chain bisection should meet at a single node");
    }

    #[test]
    fn degenerate_inputs() {
        let g = simple::chain(2, 1.0);
        let edges = all_edges(&g); // one edge
        let parts = partition_edges(&g, &edges, 4, &PartitionOptions::default());
        assert_eq!(parts, vec![0]);
        let empty: Vec<EdgeId> = Vec::new();
        let parts = partition_edges(&g, &empty, 2, &PartitionOptions::default());
        assert!(parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fanout_must_be_power_of_two() {
        let g = simple::chain(4, 1.0);
        let edges = all_edges(&g);
        let _ = partition_edges(&g, &edges, 3, &PartitionOptions::default());
    }
}
