//! Paths through the network.
//!
//! `P(u, v)` in the paper is a set of edges connecting `u` and `v`; its
//! distance is the sum of edge weights. We store the node sequence and the
//! edge sequence side by side so a path can be rendered, validated, and
//! concatenated (shortcut expansion in the Route Overlay stitches child
//! shortcut paths together exactly this way).

use crate::graph::{RoadNetwork, WeightKind};
use crate::ids::{EdgeId, NodeId};
use crate::weight::Weight;

/// A walk `n_0, e_0, n_1, e_1, ..., n_k` with its total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
    total: Weight,
}

impl Path {
    /// A zero-length path sitting at `n`.
    pub fn trivial(n: NodeId) -> Self {
        Path { nodes: vec![n], edges: Vec::new(), total: Weight::ZERO }
    }

    /// Builds a path from explicit parts.
    ///
    /// # Panics
    /// Panics if `nodes.len() != edges.len() + 1` or `nodes` is empty.
    pub fn from_parts(nodes: Vec<NodeId>, edges: Vec<EdgeId>, total: Weight) -> Self {
        assert!(!nodes.is_empty(), "a path has at least one node");
        assert_eq!(nodes.len(), edges.len() + 1, "node/edge sequence mismatch");
        Path { nodes, edges, total }
    }

    /// Source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Target node.
    #[inline]
    pub fn target(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Total path weight.
    #[inline]
    pub fn total(&self) -> Weight {
        self.total
    }

    /// The node sequence.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for a zero-hop path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Reverses the path in place (paths are undirected walks).
    pub fn reverse(&mut self) {
        self.nodes.reverse();
        self.edges.reverse();
    }

    /// Appends `other` to `self`; `other` must start where `self` ends.
    ///
    /// # Panics
    /// Panics if the endpoints do not line up.
    pub fn extend(&mut self, other: &Path) {
        assert_eq!(self.target(), other.source(), "paths do not join");
        self.nodes.extend_from_slice(&other.nodes[1..]);
        self.edges.extend_from_slice(&other.edges);
        self.total += other.total;
    }

    /// Checks the path against a network: consecutive nodes joined by the
    /// recorded edges, and the stored total matching the edge-weight sum
    /// under `kind`. Used by tests and debug assertions.
    pub fn validate(&self, g: &RoadNetwork, kind: WeightKind) -> bool {
        let mut sum = Weight::ZERO;
        for (i, &e) in self.edges.iter().enumerate() {
            let (a, b) = g.edge(e).endpoints();
            let (u, v) = (self.nodes[i], self.nodes[i + 1]);
            if !((a == u && b == v) || (a == v && b == u)) {
                return false;
            }
            sum += g.weight(e, kind);
        }
        sum.approx_eq(self.total)
    }

    /// Reconstructs a path from Dijkstra predecessor links.
    ///
    /// `pred[n]` holds the `(previous node, via edge)` pair for every
    /// settled node, with `src` mapping to itself.
    pub(crate) fn from_predecessors(
        src: NodeId,
        dst: NodeId,
        total: Weight,
        pred: impl Fn(NodeId) -> Option<(NodeId, EdgeId)>,
    ) -> Option<Path> {
        let mut nodes = vec![dst];
        let mut edges = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (p, e) = pred(cur)?;
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn line() -> (RoadNetwork, Vec<NodeId>, Vec<EdgeId>) {
        let mut b = RoadNetwork::builder();
        let ns: Vec<NodeId> = (0..4).map(|i| b.add_node(Point::new(i as f64, 0.0))).collect();
        let es = vec![
            b.add_edge(ns[0], ns[1], 1.0).unwrap(),
            b.add_edge(ns[1], ns[2], 2.0).unwrap(),
            b.add_edge(ns[2], ns[3], 3.0).unwrap(),
        ];
        (b.build(), ns, es)
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId(5));
        assert_eq!(p.source(), NodeId(5));
        assert_eq!(p.target(), NodeId(5));
        assert!(p.is_empty());
        assert_eq!(p.total(), Weight::ZERO);
    }

    #[test]
    fn extend_joins_paths() {
        let (g, ns, es) = line();
        let mut p = Path::from_parts(vec![ns[0], ns[1]], vec![es[0]], Weight::new(1.0));
        let q = Path::from_parts(vec![ns[1], ns[2], ns[3]], vec![es[1], es[2]], Weight::new(5.0));
        p.extend(&q);
        assert_eq!(p.total(), Weight::new(6.0));
        assert_eq!(p.len(), 3);
        assert!(p.validate(&g, WeightKind::Distance));
    }

    #[test]
    #[should_panic(expected = "do not join")]
    fn extend_rejects_disjoint() {
        let (_, ns, es) = line();
        let mut p = Path::from_parts(vec![ns[0], ns[1]], vec![es[0]], Weight::new(1.0));
        let q = Path::from_parts(vec![ns[2], ns[3]], vec![es[2]], Weight::new(3.0));
        p.extend(&q);
    }

    #[test]
    fn validate_catches_wrong_totals_and_edges() {
        let (g, ns, es) = line();
        let good = Path::from_parts(vec![ns[0], ns[1]], vec![es[0]], Weight::new(1.0));
        assert!(good.validate(&g, WeightKind::Distance));
        let bad_total = Path::from_parts(vec![ns[0], ns[1]], vec![es[0]], Weight::new(2.0));
        assert!(!bad_total.validate(&g, WeightKind::Distance));
        let bad_edge = Path::from_parts(vec![ns[0], ns[1]], vec![es[1]], Weight::new(2.0));
        assert!(!bad_edge.validate(&g, WeightKind::Distance));
    }

    #[test]
    fn reverse_flips_endpoints() {
        let (g, ns, es) = line();
        let mut p =
            Path::from_parts(vec![ns[0], ns[1], ns[2]], vec![es[0], es[1]], Weight::new(3.0));
        p.reverse();
        assert_eq!(p.source(), ns[2]);
        assert_eq!(p.target(), ns[0]);
        assert!(p.validate(&g, WeightKind::Distance));
    }
}
