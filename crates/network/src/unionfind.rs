//! Disjoint-set union (union-find) with path halving and union by size.
//!
//! Used by the synthetic generators (spanning-tree protection while deleting
//! edges) and by partition sanity checks.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // path halving
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn everything_mergeable_into_one() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(0, i);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.set_size(57), 100);
    }
}
