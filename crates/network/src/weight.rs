//! Totally-ordered edge weights.
//!
//! The paper treats an edge weight `|n,n'|` as any positive scalar — travel
//! distance, trip time or toll. We model it as an `f64` wrapped in a type
//! that (a) rejects NaN at construction and (b) provides a total order so it
//! can live in `BinaryHeap`s and `BTreeMap`s. `+∞` is permitted: it is the
//! sentinel the maintenance algorithms use for deleted edges (Section 5.2.2
//! models edge deletion as "change of its edge distance to infinity").

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A non-NaN, non-negative edge or path weight.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Weight(f64);

impl Weight {
    /// The zero weight (distance from a node to itself).
    pub const ZERO: Weight = Weight(0.0);
    /// Infinite weight: unreachable, or a tombstoned edge.
    pub const INFINITY: Weight = Weight(f64::INFINITY);

    /// Wraps a raw value.
    ///
    /// # Panics
    /// Panics if `v` is NaN or negative — both indicate a logic error in the
    /// caller and would silently corrupt every shortest-path computation
    /// downstream, so we fail fast.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "weight must not be NaN");
        assert!(v >= 0.0, "weight must be non-negative, got {v}");
        Weight(v)
    }

    /// Fallible constructor for untrusted input.
    #[inline]
    pub fn try_new(v: f64) -> Result<Self, crate::NetworkError> {
        if v.is_nan() || v < 0.0 {
            Err(crate::NetworkError::InvalidWeight(v))
        } else {
            Ok(Weight(v))
        }
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `true` when this weight is the `+∞` sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// `true` when this weight is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Minimum of two weights.
    #[inline]
    pub fn min(self, other: Weight) -> Weight {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two weights.
    #[inline]
    pub fn max(self, other: Weight) -> Weight {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Relative-tolerance equality, used by tests and the shortcut
    /// filter-and-refresh pass to compare recomputed path lengths against
    /// stored ones without tripping on floating-point rounding.
    #[inline]
    pub fn approx_eq(self, other: Weight) -> bool {
        if self.0 == other.0 {
            return true;
        }
        if self.0.is_infinite() || other.0.is_infinite() {
            return false;
        }
        let scale = self.0.abs().max(other.0.abs()).max(1.0);
        (self.0 - other.0).abs() <= 1e-9 * scale
    }
}

impl Eq for Weight {}

impl Ord for Weight {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction, so total_cmp agrees with
        // the IEEE partial order on every value we can hold.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Weight {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for Weight {
    type Output = Weight;
    #[inline]
    fn add(self, rhs: Weight) -> Weight {
        Weight(self.0 + rhs.0)
    }
}

impl AddAssign for Weight {
    #[inline]
    fn add_assign(&mut self, rhs: Weight) {
        self.0 += rhs.0;
    }
}

impl Sub for Weight {
    type Output = Weight;
    #[inline]
    fn sub(self, rhs: Weight) -> Weight {
        Weight::new((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for Weight {
    #[inline]
    fn from(v: f64) -> Self {
        Weight::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_infinity_sorts_last() {
        let mut v = [Weight::INFINITY, Weight::new(2.0), Weight::ZERO, Weight::new(1.5)];
        v.sort();
        assert_eq!(v[0], Weight::ZERO);
        assert_eq!(v[3], Weight::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Weight::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_is_rejected() {
        let _ = Weight::new(-1.0);
    }

    #[test]
    fn try_new_reports_errors() {
        assert!(Weight::try_new(f64::NAN).is_err());
        assert!(Weight::try_new(-0.5).is_err());
        assert!(Weight::try_new(3.0).is_ok());
    }

    #[test]
    fn arithmetic_behaves() {
        assert_eq!(Weight::new(1.0) + Weight::new(2.0), Weight::new(3.0));
        assert_eq!(Weight::new(5.0) - Weight::new(2.0), Weight::new(3.0));
        // Saturating subtraction keeps the non-negative invariant.
        assert_eq!(Weight::new(1.0) - Weight::new(2.0), Weight::ZERO);
        let mut w = Weight::new(1.0);
        w += Weight::new(0.5);
        assert_eq!(w, Weight::new(1.5));
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Weight::new(0.1 + 0.2);
        let b = Weight::new(0.3);
        assert!(a.approx_eq(b));
        assert!(!Weight::new(1.0).approx_eq(Weight::new(1.1)));
        assert!(Weight::INFINITY.approx_eq(Weight::INFINITY));
        assert!(!Weight::INFINITY.approx_eq(Weight::new(1.0)));
    }

    #[test]
    fn min_max() {
        let a = Weight::new(1.0);
        let b = Weight::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
