//! Property tests for the graph substrate: metric properties of shortest
//! paths, A*/Dijkstra equivalence, and partition invariants on arbitrary
//! connected networks.

use proptest::prelude::*;
use road_network::astar::AStar;
use road_network::dijkstra::{shortest_path, shortest_path_weight, Dijkstra};
use road_network::generator::simple;
use road_network::graph::WeightKind;
use road_network::partition::{bisect, internal_border_count, partition_edges, PartitionOptions};
use road_network::{EdgeId, NodeId};

fn net_strategy() -> impl Strategy<Value = road_network::graph::RoadNetwork> {
    (5usize..60, 0usize..25, 0u64..500)
        .prop_map(|(n, extra, seed)| simple::random_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Undirected network distance is symmetric.
    #[test]
    fn distance_is_symmetric(g in net_strategy(), a in 0u32..60, b in 0u32..60) {
        let a = NodeId(a % g.num_nodes() as u32);
        let b = NodeId(b % g.num_nodes() as u32);
        let ab = shortest_path_weight(&g, WeightKind::Distance, a, b);
        let ba = shortest_path_weight(&g, WeightKind::Distance, b, a);
        match (ab, ba) {
            (Some(x), Some(y)) => prop_assert!(x.approx_eq(y)),
            (x, y) => prop_assert_eq!(x.is_some(), y.is_some()),
        }
    }

    /// Shortest distances satisfy the triangle inequality.
    #[test]
    fn triangle_inequality(g in net_strategy(),
                           a in 0u32..60, b in 0u32..60, c in 0u32..60) {
        let n = g.num_nodes() as u32;
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        let mut dij = Dijkstra::for_network(&g);
        let ab = dij.one_to_one(&g, WeightKind::Distance, a, b);
        let bc = dij.one_to_one(&g, WeightKind::Distance, b, c);
        let ac = dij.one_to_one(&g, WeightKind::Distance, a, c);
        if let (Some(ab), Some(bc), Some(ac)) = (ab, bc, ac) {
            prop_assert!(ac.get() <= ab.get() + bc.get() + 1e-9 * (1.0 + ac.get()));
        }
    }

    /// Reconstructed shortest paths are valid walks with the right total.
    #[test]
    fn shortest_paths_validate(g in net_strategy(), a in 0u32..60, b in 0u32..60) {
        let a = NodeId(a % g.num_nodes() as u32);
        let b = NodeId(b % g.num_nodes() as u32);
        if let Some(p) = shortest_path(&g, WeightKind::Distance, a, b) {
            prop_assert!(p.validate(&g, WeightKind::Distance));
            prop_assert_eq!(p.source(), a);
            prop_assert_eq!(p.target(), b);
            let d = shortest_path_weight(&g, WeightKind::Distance, a, b).unwrap();
            prop_assert!(p.total().approx_eq(d));
        }
    }

    /// A* with the derived admissible heuristic equals Dijkstra, for every
    /// metric.
    #[test]
    fn astar_equals_dijkstra(g in net_strategy(), a in 0u32..60, b in 0u32..60) {
        let a = NodeId(a % g.num_nodes() as u32);
        let b = NodeId(b % g.num_nodes() as u32);
        for kind in WeightKind::ALL {
            let want = shortest_path_weight(&g, kind, a, b);
            let got = AStar::for_network(&g, kind).one_to_one(&g, kind, a, b);
            match (got, want) {
                (Some(x), Some(y)) => prop_assert!(x.approx_eq(y), "{:?}: {} vs {}", kind, x, y),
                (x, y) => prop_assert_eq!(x.is_some(), y.is_some()),
            }
        }
    }

    /// Bisection covers every edge exactly once and respects balance.
    #[test]
    fn bisection_invariants(g in net_strategy()) {
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let opts = PartitionOptions::default();
        let side = bisect(&g, &edges, &opts);
        prop_assert_eq!(side.len(), edges.len());
        if edges.len() >= 4 {
            let right = side.iter().filter(|&&s| s).count();
            let min = (edges.len() as f64 * opts.min_balance).floor() as usize;
            prop_assert!(right >= min && edges.len() - right >= min,
                "unbalanced: {} / {}", edges.len() - right, right);
        }
        // Border count is consistent with a recount.
        let _ = internal_border_count(&g, &edges, &side);
    }

    /// Multi-way partitions assign every edge to a valid part.
    #[test]
    fn partition_assigns_all(g in net_strategy(),
                             parts in prop_oneof![Just(2usize), Just(4), Just(8)]) {
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let assignment = partition_edges(&g, &edges, parts, &PartitionOptions::default());
        prop_assert_eq!(assignment.len(), edges.len());
        for &p in &assignment {
            prop_assert!((p as usize) < parts);
        }
    }

    /// Weight mutations round-trip and never corrupt other edges.
    #[test]
    fn weight_updates_are_isolated(mut g in net_strategy(),
                                   idx in 0usize..100, w in 0.01f64..50.0) {
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let e = edges[idx % edges.len()];
        let snapshot: Vec<f64> = edges.iter()
            .map(|&x| g.weight(x, WeightKind::Distance).get()).collect();
        let old = g.set_weight(e, WeightKind::Distance, road_network::Weight::new(w)).unwrap();
        prop_assert_eq!(old.get(), snapshot[idx % edges.len()]);
        for (i, &x) in edges.iter().enumerate() {
            if x != e {
                prop_assert_eq!(g.weight(x, WeightKind::Distance).get(), snapshot[i]);
            } else {
                prop_assert_eq!(g.weight(x, WeightKind::Distance).get(), w);
            }
        }
    }
}
