//! Counting Bloom filter over `u64` keys.
//!
//! The paper lists Bloom filters (ref \[1\]) among the techniques to
//! "represent an object abstract with fewer storage overheads". Object
//! abstracts must also shrink when objects are deleted (Section 5.1), so we
//! use the *counting* variant: per-cell saturating counters instead of
//! bits. Membership answers are "definitely not present" or "maybe
//! present" — exactly the semantics search-space pruning needs (a false
//! positive costs a wasted descent, never a wrong answer).

use std::hash::Hasher;

/// A counting Bloom filter.
#[derive(Clone, Debug)]
pub struct CountingBloom {
    counts: Vec<u16>,
    num_hashes: u32,
    items: usize,
}

impl CountingBloom {
    /// Creates a filter with `cells` counters and `num_hashes` hash
    /// functions.
    ///
    /// # Panics
    /// Panics if `cells` or `num_hashes` is zero.
    pub fn new(cells: usize, num_hashes: u32) -> Self {
        assert!(cells > 0, "bloom filter needs at least one cell");
        assert!(num_hashes > 0, "bloom filter needs at least one hash");
        CountingBloom { counts: vec![0; cells], num_hashes, items: 0 }
    }

    /// Sizes a filter for roughly `expected` items at ~1% false positives.
    pub fn for_expected_items(expected: usize) -> Self {
        // Standard sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2; p = 0.01.
        let n = expected.max(1) as f64;
        let m = (-n * (0.01f64).ln() / (2f64.ln().powi(2))).ceil() as usize;
        let k = ((m as f64 / n) * 2f64.ln()).round().clamp(1.0, 16.0) as u32;
        CountingBloom::new(m.max(8), k)
    }

    #[inline]
    fn cell_indices(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        // Kirsch–Mitzenmacher double hashing: h_i = h1 + i * h2.
        let mut hasher = road_network::hash::FxHasher::default();
        hasher.write_u64(key);
        let h1 = hasher.finish();
        hasher.write_u64(0x9E37_79B9_7F4A_7C15);
        let h2 = hasher.finish() | 1; // odd, so it cycles all cells
        let m = self.counts.len() as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Adds one occurrence of `key`.
    pub fn insert(&mut self, key: u64) {
        let idx: Vec<usize> = self.cell_indices(key).collect();
        for i in idx {
            self.counts[i] = self.counts[i].saturating_add(1);
        }
        self.items += 1;
    }

    /// Removes one occurrence of `key`.
    ///
    /// Removing a key that was never inserted can corrupt the filter (as in
    /// any counting Bloom filter); callers guard against it.
    pub fn remove(&mut self, key: u64) {
        let idx: Vec<usize> = self.cell_indices(key).collect();
        for i in idx {
            self.counts[i] = self.counts[i].saturating_sub(1);
        }
        self.items = self.items.saturating_sub(1);
    }

    /// `false` = definitely absent; `true` = possibly present.
    pub fn may_contain(&self, key: u64) -> bool {
        self.cell_indices(key).all(|i| self.counts[i] > 0)
    }

    /// Number of insertions minus removals.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Serialized size in bytes (for the index-size experiments).
    pub fn size_bytes(&self) -> usize {
        self.counts.len() * 2 + 8
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = CountingBloom::for_expected_items(500);
        for k in 0..500u64 {
            b.insert(k * 7919);
        }
        for k in 0..500u64 {
            assert!(b.may_contain(k * 7919), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = CountingBloom::for_expected_items(1000);
        for k in 0..1000u64 {
            b.insert(k);
        }
        let fp = (1000..11_000u64).filter(|&k| b.may_contain(k)).count();
        assert!(fp < 400, "false-positive rate too high: {fp}/10000");
    }

    #[test]
    fn deletion_restores_absence() {
        let mut b = CountingBloom::new(64, 3);
        b.insert(42);
        b.insert(42);
        assert!(b.may_contain(42));
        b.remove(42);
        assert!(b.may_contain(42), "one occurrence left");
        b.remove(42);
        assert!(!b.may_contain(42), "fully removed");
        assert_eq!(b.items(), 0);
    }

    #[test]
    fn counting_handles_collisions() {
        // Insert many keys into a small filter, then remove them all: every
        // counter must return to zero.
        let mut b = CountingBloom::new(32, 2);
        let keys: Vec<u64> = (0..100).collect();
        for &k in &keys {
            b.insert(k);
        }
        for &k in &keys {
            b.remove(k);
        }
        assert!(b.is_empty());
        for &k in &keys {
            assert!(!b.may_contain(k), "stale counter for {k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = CountingBloom::new(0, 1);
    }
}
