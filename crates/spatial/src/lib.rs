//! # road-spatial
//!
//! Spatial substrates used by the ROAD reproduction:
//!
//! * [`rtree`] — an R-tree with STR bulk loading, incremental best-first
//!   nearest-neighbour search and range search. The Euclidean-bound
//!   baseline (refs \[16\], \[19\] of the paper) indexes object coordinates in
//!   an R-tree and retrieves candidates in increasing Euclidean distance.
//! * [`bloom`] — a counting Bloom filter (ref \[1\]); one of the compact
//!   representations the paper suggests for *object abstracts*, made
//!   counting so that object deletion works without rebuilding.
//! * [`signature`] — superimposed-coding signatures (ref \[5\]); the other
//!   compact abstract representation.

pub mod bloom;
pub mod rtree;
pub mod signature;

pub use bloom::CountingBloom;
pub use rtree::RTree;
pub use signature::Signature;
