//! An R-tree over points, with STR bulk loading, Guttman insert/delete and
//! best-first incremental nearest-neighbour search.
//!
//! The Euclidean-bound baseline stores object locations here ("for
//! Euclidean, objects are indexed by an R-tree", Section 6) and consumes
//! candidates in increasing Euclidean distance, verifying each by an exact
//! network-distance computation. Every tree node models one disk page, so
//! the iterator reports which nodes it visited for I/O accounting.

use road_network::geometry::{Point, Rect};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-ordered `f64` for heap keys (no NaNs can arise from distances).
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Debug)]
struct Node {
    rect: Rect,
    leaf: bool,
    children: Vec<u32>,         // internal nodes
    entries: Vec<(Point, u64)>, // leaf nodes
}

impl Node {
    fn new_leaf() -> Self {
        Node { rect: Rect::EMPTY, leaf: true, children: Vec::new(), entries: Vec::new() }
    }
    fn new_internal() -> Self {
        Node { rect: Rect::EMPTY, leaf: false, children: Vec::new(), entries: Vec::new() }
    }
    fn fanout(&self) -> usize {
        if self.leaf {
            self.entries.len()
        } else {
            self.children.len()
        }
    }
}

/// A point R-tree keyed by opaque `u64` ids.
pub struct RTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    max_entries: usize,
    min_entries: usize,
    len: usize,
}

impl RTree {
    /// An empty tree; `max_entries` models the per-page fanout (the
    /// default used by the baselines is [`RTree::DEFAULT_MAX_ENTRIES`]).
    pub fn new(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R-tree fanout must be at least 4");
        let nodes = vec![Node::new_leaf()];
        RTree {
            nodes,
            free: Vec::new(),
            root: 0,
            max_entries,
            min_entries: (max_entries * 2) / 5,
            len: 0,
        }
    }

    /// Fanout for a 4 KB page of (rect 32 B + id 8 B) entries.
    pub const DEFAULT_MAX_ENTRIES: usize = 100;

    /// Bulk loads with the Sort-Tile-Recursive algorithm; the resulting
    /// tree is near-perfectly packed.
    pub fn bulk_load(points: &[(Point, u64)], max_entries: usize) -> Self {
        let mut tree = RTree::new(max_entries);
        if points.is_empty() {
            return tree;
        }
        tree.nodes.clear();
        tree.len = points.len();

        // Pack the leaf level.
        let mut items: Vec<(Point, u64)> = points.to_vec();
        let leaf_ids = tree.str_pack_leaves(&mut items);
        // Pack internal levels until a single root remains.
        let mut level = leaf_ids;
        while level.len() > 1 {
            level = tree.str_pack_internal(level);
        }
        tree.root = level[0];
        tree
    }

    fn str_pack_leaves(&mut self, items: &mut [(Point, u64)]) -> Vec<u32> {
        let m = self.max_entries;
        let pages = items.len().div_ceil(m);
        let slices = (pages as f64).sqrt().ceil() as usize;
        let per_slice = items.len().div_ceil(slices);
        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));
        let mut out = Vec::with_capacity(pages);
        for slice in items.chunks_mut(per_slice.max(1)) {
            slice.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            for run in slice.chunks(m) {
                let mut node = Node::new_leaf();
                node.entries = run.to_vec();
                node.rect = Rect::covering(run.iter().map(|e| e.0));
                out.push(self.alloc(node));
            }
        }
        out
    }

    fn str_pack_internal(&mut self, children: Vec<u32>) -> Vec<u32> {
        let m = self.max_entries;
        let mut items: Vec<(Point, u32)> =
            children.iter().map(|&c| (self.nodes[c as usize].rect.center(), c)).collect();
        let pages = items.len().div_ceil(m);
        let slices = (pages as f64).sqrt().ceil() as usize;
        let per_slice = items.len().div_ceil(slices);
        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));
        let mut out = Vec::with_capacity(pages);
        let mut sliced: Vec<Vec<(Point, u32)>> = Vec::new();
        for slice in items.chunks(per_slice.max(1)) {
            let mut s = slice.to_vec();
            s.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            sliced.push(s);
        }
        for slice in sliced {
            for run in slice.chunks(m) {
                let mut node = Node::new_internal();
                node.children = run.iter().map(|&(_, c)| c).collect();
                node.rect = run
                    .iter()
                    .fold(Rect::EMPTY, |r, &(_, c)| r.union(&self.nodes[c as usize].rect));
                out.push(self.alloc(node));
            }
        }
        out
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live tree nodes (each models one page).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Modelled on-disk size: one 4 KB page per node.
    pub fn size_bytes(&self) -> usize {
        self.num_nodes() * 4096
    }

    /// Inserts a point (Guttman: least-enlargement descent, quadratic
    /// split on overflow).
    pub fn insert(&mut self, p: Point, id: u64) {
        self.len += 1;
        // Descend, recording the path.
        let mut path = Vec::new();
        let mut cur = self.root;
        loop {
            let node = &self.nodes[cur as usize];
            if node.leaf {
                break;
            }
            path.push(cur);
            let mut best = (f64::INFINITY, f64::INFINITY, 0u32);
            for &c in &node.children {
                let r = self.nodes[c as usize].rect;
                let enlarged = r.union_point(p);
                let enlargement = enlarged.area() - r.area();
                let key = (enlargement, r.area(), c);
                if key.0 < best.0 || (key.0 == best.0 && key.1 < best.1) {
                    best = key;
                }
            }
            cur = best.2;
        }
        self.nodes[cur as usize].entries.push((p, id));
        self.nodes[cur as usize].rect = self.nodes[cur as usize].rect.union_point(p);
        // Split upward while overflowing.
        let mut split = if self.nodes[cur as usize].entries.len() > self.max_entries {
            Some((cur, self.split_node(cur)))
        } else {
            None
        };
        for &parent in path.iter().rev() {
            self.nodes[parent as usize].rect = self.nodes[parent as usize].rect.union_point(p);
            if let Some((_, new_node)) = split {
                self.nodes[parent as usize].children.push(new_node);
                self.refresh_rect(parent);
                split = if self.nodes[parent as usize].children.len() > self.max_entries {
                    Some((parent, self.split_node(parent)))
                } else {
                    None
                };
            }
        }
        if let Some((old, new_node)) = split {
            // Root split: grow the tree.
            let mut root = Node::new_internal();
            root.children = vec![old, new_node];
            root.rect = self.nodes[old as usize].rect.union(&self.nodes[new_node as usize].rect);
            self.root = self.alloc(root);
        }
    }

    /// Quadratic split of an overflowing node; returns the new sibling.
    fn split_node(&mut self, idx: u32) -> u32 {
        let node = &mut self.nodes[idx as usize];
        let leaf = node.leaf;
        // Collect item rects + payload indexes.
        let rects: Vec<Rect> = if leaf {
            node.entries.iter().map(|e| Rect::point(e.0)).collect()
        } else {
            let children = node.children.clone();
            children.iter().map(|&c| self.nodes[c as usize].rect).collect()
        };
        let n = rects.len();
        // Seeds: pair with the most dead area.
        let mut seed = (0usize, 1usize);
        let mut worst = f64::NEG_INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let dead = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
                if dead > worst {
                    worst = dead;
                    seed = (i, j);
                }
            }
        }
        let mut group_a = vec![seed.0];
        let mut group_b = vec![seed.1];
        let mut rect_a = rects[seed.0];
        let mut rect_b = rects[seed.1];
        let mut rest: Vec<usize> = (0..n).filter(|&i| i != seed.0 && i != seed.1).collect();
        let min = self.min_entries.max(1);
        while let Some(pos) = {
            if rest.is_empty() {
                None
            } else if group_a.len() + rest.len() == min || group_b.len() + rest.len() == min {
                Some(0) // force-assign the remainder to the starving group
            } else {
                // Pick the item with the strongest preference.
                let mut best = (f64::NEG_INFINITY, 0usize);
                for (k, &i) in rest.iter().enumerate() {
                    let da = rect_a.union(&rects[i]).area() - rect_a.area();
                    let db = rect_b.union(&rects[i]).area() - rect_b.area();
                    let pref = (da - db).abs();
                    if pref > best.0 {
                        best = (pref, k);
                    }
                }
                Some(best.1)
            }
        } {
            let i = rest.swap_remove(pos);
            let da = rect_a.union(&rects[i]).area() - rect_a.area();
            let db = rect_b.union(&rects[i]).area() - rect_b.area();
            let to_a = if group_a.len() + rest.len() + 1 == min {
                true
            } else if group_b.len() + rest.len() + 1 == min {
                false
            } else {
                da < db || (da == db && group_a.len() <= group_b.len())
            };
            if to_a {
                group_a.push(i);
                rect_a = rect_a.union(&rects[i]);
            } else {
                group_b.push(i);
                rect_b = rect_b.union(&rects[i]);
            }
        }
        // Materialise the two groups.
        let node = &mut self.nodes[idx as usize];
        let mut sibling = if leaf { Node::new_leaf() } else { Node::new_internal() };
        if leaf {
            let entries = std::mem::take(&mut node.entries);
            let mut keep = Vec::with_capacity(group_a.len());
            for &i in &group_a {
                keep.push(entries[i]);
            }
            for &i in &group_b {
                sibling.entries.push(entries[i]);
            }
            node.entries = keep;
        } else {
            let children = std::mem::take(&mut node.children);
            let mut keep = Vec::with_capacity(group_a.len());
            for &i in &group_a {
                keep.push(children[i]);
            }
            for &i in &group_b {
                sibling.children.push(children[i]);
            }
            node.children = keep;
        }
        node.rect = rect_a;
        sibling.rect = rect_b;
        self.alloc(sibling)
    }

    fn refresh_rect(&mut self, idx: u32) {
        let node = &self.nodes[idx as usize];
        let rect = if node.leaf {
            Rect::covering(node.entries.iter().map(|e| e.0))
        } else {
            node.children.iter().fold(Rect::EMPTY, |r, &c| r.union(&self.nodes[c as usize].rect))
        };
        self.nodes[idx as usize].rect = rect;
    }

    /// Removes the entry with this exact point and id; `true` if found.
    /// Underflowing nodes are dissolved and their entries reinserted
    /// (Guttman's condense-tree).
    pub fn remove(&mut self, p: Point, id: u64) -> bool {
        let mut path = Vec::new();
        let Some(leaf) = self.find_leaf(self.root, p, id, &mut path) else {
            return false;
        };
        let node = &mut self.nodes[leaf as usize];
        let pos = node.entries.iter().position(|&(q, i)| i == id && q == p).unwrap();
        node.entries.remove(pos);
        self.len -= 1;

        let mut orphans: Vec<(Point, u64)> = Vec::new();
        // Condense from the leaf upward.
        let mut child = leaf;
        for &parent in path.iter().rev() {
            let under = self.nodes[child as usize].fanout() < self.min_entries;
            if under {
                // Dissolve the child: collect its entries, unlink it.
                self.collect_entries(child, &mut orphans);
                let pnode = &mut self.nodes[parent as usize];
                let pos = pnode.children.iter().position(|&c| c == child).unwrap();
                pnode.children.remove(pos);
                self.free_subtree(child);
            }
            self.refresh_rect(parent);
            child = parent;
        }
        // Shrink the root.
        loop {
            let root = &self.nodes[self.root as usize];
            if !root.leaf && root.children.len() == 1 {
                let only = root.children[0];
                self.free.push(self.root);
                self.root = only;
            } else if !root.leaf && root.children.is_empty() {
                self.free.push(self.root);
                let empty = self.alloc(Node::new_leaf());
                self.root = empty;
                break;
            } else {
                break;
            }
        }
        self.len -= orphans.len();
        for (q, i) in orphans {
            self.insert(q, i);
        }
        true
    }

    fn find_leaf(&self, cur: u32, p: Point, id: u64, path: &mut Vec<u32>) -> Option<u32> {
        let node = &self.nodes[cur as usize];
        if node.leaf {
            if node.entries.iter().any(|&(q, i)| i == id && q == p) {
                return Some(cur);
            }
            return None;
        }
        path.push(cur);
        for &c in &node.children {
            if self.nodes[c as usize].rect.contains_point(p) {
                if let Some(found) = self.find_leaf(c, p, id, path) {
                    return Some(found);
                }
            }
        }
        path.pop();
        None
    }

    fn collect_entries(&self, cur: u32, out: &mut Vec<(Point, u64)>) {
        let node = &self.nodes[cur as usize];
        if node.leaf {
            out.extend_from_slice(&node.entries);
        } else {
            for &c in &node.children {
                self.collect_entries(c, out);
            }
        }
    }

    fn free_subtree(&mut self, cur: u32) {
        let children = self.nodes[cur as usize].children.clone();
        for c in children {
            self.free_subtree(c);
        }
        self.free.push(cur);
    }

    /// Incremental best-first nearest-neighbour iterator: yields
    /// `(id, euclidean distance)` in non-decreasing distance order.
    pub fn nearest(&self, from: Point) -> NearestIter<'_> {
        let mut heap = BinaryHeap::new();
        if self.len > 0 {
            heap.push(Reverse((
                OrdF64(self.nodes[self.root as usize].rect.min_distance(from)),
                HeapItem::Node(self.root),
            )));
        }
        NearestIter { tree: self, from, heap, visited_nodes: Vec::new() }
    }

    /// All entries within `radius` of `center`, with distances; also
    /// returns the list of visited node ids for I/O accounting.
    pub fn range(&self, center: Point, radius: f64) -> (Vec<(u64, f64)>, Vec<u32>) {
        let mut out = Vec::new();
        let mut visited = Vec::new();
        if self.len == 0 {
            return (out, visited);
        }
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            visited.push(cur);
            let node = &self.nodes[cur as usize];
            if node.rect.min_distance(center) > radius {
                continue;
            }
            if node.leaf {
                for &(p, id) in &node.entries {
                    let d = p.distance(center);
                    if d <= radius {
                        out.push((id, d));
                    }
                }
            } else {
                for &c in &node.children {
                    if self.nodes[c as usize].rect.min_distance(center) <= radius {
                        stack.push(c);
                    }
                }
            }
        }
        (out, visited)
    }

    /// Checks structural invariants; used by tests.
    pub fn validate(&self) -> Result<(), String> {
        fn check(
            tree: &RTree,
            cur: u32,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> Result<usize, String> {
            let node = &tree.nodes[cur as usize];
            if node.leaf {
                match *leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) if d != depth => {
                        return Err(format!("leaf at depth {depth}, expected {d}"))
                    }
                    _ => {}
                }
                for &(p, _) in &node.entries {
                    if !node.rect.contains_point(p) {
                        return Err(format!("leaf rect does not contain {p:?}"));
                    }
                }
                Ok(node.entries.len())
            } else {
                if node.children.is_empty() {
                    return Err("empty internal node".to_string());
                }
                let mut count = 0;
                for &c in &node.children {
                    let child_rect = tree.nodes[c as usize].rect;
                    let union = node.rect.union(&child_rect);
                    if union != node.rect {
                        return Err("parent rect does not cover child".to_string());
                    }
                    count += check(tree, c, depth + 1, leaf_depth)?;
                }
                Ok(count)
            }
        }
        let mut leaf_depth = None;
        let count = check(self, self.root, 0, &mut leaf_depth)?;
        if count != self.len {
            return Err(format!("len = {} but {count} entries reachable", self.len));
        }
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HeapItem {
    Node(u32),
    Entry(u64),
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Arbitrary but total; only used to break distance ties.
        let key = |h: &HeapItem| match h {
            HeapItem::Node(n) => (0u8, *n as u64),
            HeapItem::Entry(e) => (1u8, *e),
        };
        key(self).cmp(&key(other))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// See [`RTree::nearest`].
pub struct NearestIter<'a> {
    tree: &'a RTree,
    from: Point,
    heap: BinaryHeap<Reverse<(OrdF64, HeapItem)>>,
    visited_nodes: Vec<u32>,
}

impl NearestIter<'_> {
    /// Node ids expanded so far (each models one page read).
    pub fn visited_nodes(&self) -> &[u32] {
        &self.visited_nodes
    }
}

impl Iterator for NearestIter<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Reverse((OrdF64(d), item))) = self.heap.pop() {
            match item {
                HeapItem::Entry(id) => return Some((id, d)),
                HeapItem::Node(n) => {
                    self.visited_nodes.push(n);
                    let node = &self.tree.nodes[n as usize];
                    if node.leaf {
                        for &(p, id) in &node.entries {
                            self.heap.push(Reverse((
                                OrdF64(p.distance(self.from)),
                                HeapItem::Entry(id),
                            )));
                        }
                    } else {
                        for &c in &node.children {
                            let dist = self.tree.nodes[c as usize].rect.min_distance(self.from);
                            self.heap.push(Reverse((OrdF64(dist), HeapItem::Node(c))));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (Point::new(rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)), i as u64)
            })
            .collect()
    }

    fn brute_knn(pts: &[(Point, u64)], from: Point, k: usize) -> Vec<u64> {
        let mut v: Vec<(f64, u64)> = pts.iter().map(|&(p, id)| (p.distance(from), id)).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn bulk_load_is_valid_and_packed() {
        let pts = random_points(1000, 1);
        let t = RTree::bulk_load(&pts, 16);
        t.validate().unwrap();
        assert_eq!(t.len(), 1000);
        // STR packing should stay near the minimum node count.
        assert!(t.num_nodes() < 100, "too many nodes: {}", t.num_nodes());
    }

    #[test]
    fn nearest_iter_matches_brute_force() {
        let pts = random_points(500, 2);
        let t = RTree::bulk_load(&pts, 10);
        let from = Point::new(321.0, 456.0);
        let got: Vec<u64> = t.nearest(from).take(10).map(|(id, _)| id).collect();
        let want = brute_knn(&pts, from, 10);
        assert_eq!(got, want);
    }

    #[test]
    fn nearest_yields_nondecreasing_distances() {
        let pts = random_points(300, 3);
        let t = RTree::bulk_load(&pts, 8);
        let dists: Vec<f64> = t.nearest(Point::new(0.0, 0.0)).map(|(_, d)| d).collect();
        assert_eq!(dists.len(), 300);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = random_points(400, 4);
        let t = RTree::bulk_load(&pts, 12);
        let center = Point::new(500.0, 500.0);
        let (mut got, visited) = t.range(center, 150.0);
        got.sort_by_key(|&(id, _)| id);
        let mut want: Vec<u64> =
            pts.iter().filter(|&&(p, _)| p.distance(center) <= 150.0).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got.iter().map(|&(id, _)| id).collect::<Vec<_>>(), want);
        assert!(!visited.is_empty());
        assert!(visited.len() < t.num_nodes(), "range should prune subtrees");
    }

    #[test]
    fn incremental_insert_matches_bulk() {
        let pts = random_points(300, 5);
        let mut t = RTree::new(8);
        for &(p, id) in &pts {
            t.insert(p, id);
        }
        t.validate().unwrap();
        let from = Point::new(10.0, 990.0);
        let got: Vec<u64> = t.nearest(from).take(5).map(|(id, _)| id).collect();
        assert_eq!(got, brute_knn(&pts, from, 5));
    }

    #[test]
    fn remove_and_query() {
        let pts = random_points(200, 6);
        let mut t = RTree::bulk_load(&pts, 8);
        // remove half
        for &(p, id) in pts.iter().take(100) {
            assert!(t.remove(p, id), "remove {id}");
        }
        assert!(!t.remove(pts[0].0, pts[0].1), "double remove must fail");
        t.validate().unwrap();
        assert_eq!(t.len(), 100);
        let from = Point::new(500.0, 500.0);
        let got: Vec<u64> = t.nearest(from).take(7).map(|(id, _)| id).collect();
        assert_eq!(got, brute_knn(&pts[100..], from, 7));
    }

    #[test]
    fn churn_model_test() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = RTree::new(6);
        let mut alive: Vec<(Point, u64)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..600 {
            if alive.is_empty() || rng.random_range(0..3) > 0 {
                let p = Point::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0));
                t.insert(p, next_id);
                alive.push((p, next_id));
                next_id += 1;
            } else {
                let i = rng.random_range(0..alive.len());
                let (p, id) = alive.swap_remove(i);
                assert!(t.remove(p, id));
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), alive.len());
        let from = Point::new(50.0, 50.0);
        let got: Vec<u64> = t.nearest(from).take(alive.len().min(9)).map(|(id, _)| id).collect();
        assert_eq!(got, brute_knn(&alive, from, alive.len().min(9)));
    }

    #[test]
    fn empty_and_single() {
        let t = RTree::new(8);
        assert!(t.is_empty());
        assert_eq!(t.nearest(Point::new(0.0, 0.0)).next(), None);
        let (hits, _) = t.range(Point::new(0.0, 0.0), 10.0);
        assert!(hits.is_empty());
        let t = RTree::bulk_load(&[(Point::new(1.0, 1.0), 42)], 8);
        assert_eq!(t.nearest(Point::new(0.0, 0.0)).next(), Some((42, 2f64.sqrt())));
    }

    #[test]
    fn visited_nodes_are_reported() {
        let pts = random_points(500, 8);
        let t = RTree::bulk_load(&pts, 10);
        let mut it = t.nearest(Point::new(500.0, 500.0));
        let _ = it.by_ref().take(3).count();
        let few = it.visited_nodes().len();
        assert!(few >= 1);
        let _ = it.by_ref().count();
        assert!(it.visited_nodes().len() > few, "full drain visits more nodes");
    }
}
