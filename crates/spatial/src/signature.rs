//! Superimposed-coding signatures (Faloutsos & Christodoulakis, ref \[5\]).
//!
//! A signature is a fixed-width bit vector; each value sets `k` bits
//! derived from its hash, and the signature of a set is the bitwise OR of
//! its members' signatures. Containment testing is then a subset check on
//! bits: "maybe contains" iff every query bit is set. The paper lists
//! signatures alongside Bloom filters as compact object-abstract
//! representations; unlike the counting Bloom filter they do not support
//! deletion (a delete triggers a rebuild from the children, which Lemma 1
//! makes cheap).

/// A fixed-width superimposed-coding signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    bits: Vec<u64>,
    bits_per_value: u32,
}

impl Signature {
    /// An empty signature of `width_bits` bits setting `bits_per_value`
    /// bits per inserted value.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(width_bits: usize, bits_per_value: u32) -> Self {
        assert!(width_bits > 0 && bits_per_value > 0);
        Signature { bits: vec![0; width_bits.div_ceil(64)], bits_per_value }
    }

    fn width(&self) -> u64 {
        (self.bits.len() * 64) as u64
    }

    fn positions(&self, value: u64) -> impl Iterator<Item = u64> + '_ {
        use std::hash::Hasher;
        let mut hasher = road_network::hash::FxHasher::default();
        hasher.write_u64(value);
        let h1 = hasher.finish();
        hasher.write_u64(0xDEAD_BEEF_CAFE_F00D);
        let h2 = hasher.finish() | 1;
        let w = self.width();
        (0..self.bits_per_value as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % w)
    }

    /// Sets the bits of `value`.
    pub fn insert(&mut self, value: u64) {
        let pos: Vec<u64> = self.positions(value).collect();
        for p in pos {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// `false` = definitely absent, `true` = possibly present.
    pub fn may_contain(&self, value: u64) -> bool {
        self.positions(value).all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// ORs `other` into `self` (signature of a set union; this is how a
    /// parent Rnet's abstract superimposes its children's, per Lemma 1).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn union_with(&mut self, other: &Signature) {
        assert_eq!(self.bits.len(), other.bits.len(), "signature width mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// `true` if every set bit of `other` is set in `self`.
    pub fn covers(&self, other: &Signature) -> bool {
        self.bits.len() == other.bits.len()
            && self.bits.iter().zip(&other.bits).all(|(a, b)| a & b == *b)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Number of set bits (signature weight).
    pub fn weight(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_always_match() {
        let mut s = Signature::new(256, 3);
        for v in 0..40u64 {
            s.insert(v * 31);
        }
        for v in 0..40u64 {
            assert!(s.may_contain(v * 31));
        }
    }

    #[test]
    fn nonmembers_mostly_rejected() {
        let mut s = Signature::new(512, 4);
        for v in 0..30u64 {
            s.insert(v);
        }
        let fp = (1000..3000u64).filter(|&v| s.may_contain(v)).count();
        assert!(fp < 200, "signature saturated: {fp}/2000 false positives");
    }

    #[test]
    fn union_superimposes() {
        let mut a = Signature::new(128, 3);
        let mut b = Signature::new(128, 3);
        a.insert(1);
        b.insert(2);
        let mut parent = a.clone();
        parent.union_with(&b);
        assert!(parent.may_contain(1));
        assert!(parent.may_contain(2));
        assert!(parent.covers(&a));
        assert!(parent.covers(&b));
        assert!(!a.covers(&parent) || a == parent);
    }

    #[test]
    fn clear_and_weight() {
        let mut s = Signature::new(128, 3);
        assert_eq!(s.weight(), 0);
        s.insert(77);
        assert!(s.weight() >= 1 && s.weight() <= 3);
        s.clear();
        assert_eq!(s.weight(), 0);
        assert!(!s.may_contain(77));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn union_width_mismatch_panics() {
        let mut a = Signature::new(128, 3);
        let b = Signature::new(256, 3);
        a.union_with(&b);
    }
}
