//! Property tests for the spatial substrates.

use proptest::prelude::*;
use road_network::geometry::Point;
use road_spatial::{CountingBloom, RTree, Signature};

fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk-loaded R-trees answer kNN exactly like brute force.
    #[test]
    fn rtree_bulk_knn_exact(pts in points_strategy(),
                            qx in 0.0f64..1000.0, qy in 0.0f64..1000.0,
                            k in 1usize..12) {
        let entries: Vec<(Point, u64)> = pts.iter().enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), i as u64)).collect();
        let tree = RTree::bulk_load(&entries, 8);
        tree.validate().unwrap();
        let q = Point::new(qx, qy);
        let got: Vec<f64> = tree.nearest(q).take(k).map(|(_, d)| d).collect();
        let mut want: Vec<f64> = entries.iter().map(|&(p, _)| p.distance(q)).collect();
        want.sort_by(f64::total_cmp);
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "{} vs {}", g, w);
        }
    }

    /// Arbitrary insert/remove interleavings keep the tree valid and the
    /// range query exact.
    #[test]
    fn rtree_churn_stays_exact(ops in prop::collection::vec((0u8..3, 0.0f64..100.0, 0.0f64..100.0), 1..80),
                               radius in 1.0f64..60.0) {
        let mut tree = RTree::new(5);
        let mut alive: Vec<(Point, u64)> = Vec::new();
        let mut next = 0u64;
        for (op, x, y) in ops {
            if op < 2 || alive.is_empty() {
                let p = Point::new(x, y);
                tree.insert(p, next);
                alive.push((p, next));
                next += 1;
            } else {
                let i = (x as usize) % alive.len();
                let (p, id) = alive.swap_remove(i);
                prop_assert!(tree.remove(p, id));
            }
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), alive.len());
        let q = Point::new(50.0, 50.0);
        let (mut got, _) = tree.range(q, radius);
        got.sort_by_key(|&(id, _)| id);
        let mut want: Vec<u64> = alive.iter()
            .filter(|&&(p, _)| p.distance(q) <= radius).map(|&(_, id)| id).collect();
        want.sort_unstable();
        prop_assert_eq!(got.into_iter().map(|(id, _)| id).collect::<Vec<_>>(), want);
    }

    /// Counting Bloom filters never report a present key absent, and a
    /// full removal restores emptiness.
    #[test]
    fn bloom_counting_semantics(keys in prop::collection::btree_set(0u64..5000, 1..150)) {
        let mut bloom = CountingBloom::for_expected_items(keys.len());
        for &k in &keys {
            bloom.insert(k);
        }
        for &k in &keys {
            prop_assert!(bloom.may_contain(k));
        }
        for &k in &keys {
            bloom.remove(k);
        }
        prop_assert!(bloom.is_empty());
        for &k in &keys {
            prop_assert!(!bloom.may_contain(k), "stale counters for {}", k);
        }
    }

    /// Signatures have no false negatives, and a parent superimposing its
    /// children covers every child (Lemma 1's compact form).
    #[test]
    fn signature_superimposition(groups in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 1..20), 1..6)) {
        let mut parent = Signature::new(512, 3);
        let mut children = Vec::new();
        for group in &groups {
            let mut child = Signature::new(512, 3);
            for &v in group {
                child.insert(v);
            }
            parent.union_with(&child);
            children.push(child);
        }
        for (child, group) in children.iter().zip(&groups) {
            prop_assert!(parent.covers(child));
            for &v in group {
                prop_assert!(parent.may_contain(v));
            }
        }
    }
}
