//! A paged B+-tree with `u64` keys and `u64` values.
//!
//! Both ROAD components are B+-tree-indexed in the paper (Section 3.4):
//! Route Overlay "nodes are indexed by a B+-tree with unique node IDs as
//! search keys", and the Association Directory "also adopts B+-tree with
//! unique node IDs or Rnet IDs as the search key". Values here are opaque
//! `u64` record pointers (page id + offset, or an inline small payload).
//!
//! Every node occupies one 4 KB page and is read and written through a
//! [`PagePool`] — the single-threaded [`crate::BufferPool`] or a per-query
//! [`crate::striped::TalliedPool`] view of the concurrent striped pool —
//! so tree operations produce realistic page-fault patterns. Branching
//! factors are configurable (tests use tiny fanouts to force deep trees);
//! the defaults fill a page.
//!
//! Deletion does full textbook rebalancing (borrow from siblings, merge on
//! double-underflow, shrink the root), and freed pages are recycled through
//! an internal free list.
//!
//! Every operation is fallible: the pool can report a poisoned lock, and a
//! node decoded from a page whose header contradicts the page format (an
//! entry count larger than the page holds, an unknown tag) surfaces as
//! [`StorageError::CorruptPage`] instead of sizing an allocation from
//! hostile bytes or indexing out of range.
// roadlint: serving-path

use crate::buffer::PagePool;
use crate::error::StorageError;
use crate::page::{Page, PageId, PAGE_SIZE};

/// Default maximum entries per leaf: `(4096 - 8) / 16`.
pub const DEFAULT_LEAF_CAP: usize = 255;
/// Default maximum keys per internal node (fits comfortably in a page).
pub const DEFAULT_INT_CAP: usize = 255;

const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const NO_PAGE: u32 = u32::MAX;

/// A paged B+-tree.
pub struct BPlusTree {
    root: PageId,
    height: u32, // 0 = root is a leaf
    len: u64,
    leaf_cap: usize,
    int_cap: usize,
    live_pages: usize,
    free_list: Vec<PageId>,
}

/// Decoded in-memory form of one tree node.
#[derive(Debug, Clone)]
struct BNode {
    leaf: bool,
    keys: Vec<u64>,
    vals: Vec<u64>,     // leaf only
    children: Vec<u32>, // internal only
    next: u32,          // leaf only: right-sibling page
}

/// Reads a little-endian `u64` at `off`. Callers validate `off` against
/// the page size first (the count checks in [`BNode::decode`]).
// roadlint: allow(panic-fn) reason="offset bounded by the caller's count validation"
fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(buf)
}

/// Reads a little-endian `u32` at `off`; same contract as [`le_u64`].
// roadlint: allow(panic-fn) reason="offset bounded by the caller's count validation"
fn le_u32(b: &[u8], off: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[off..off + 4]);
    u32::from_le_bytes(buf)
}

impl BNode {
    fn new_leaf() -> Self {
        BNode {
            leaf: true,
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
            next: NO_PAGE,
        }
    }

    fn new_internal() -> Self {
        BNode {
            leaf: false,
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
            next: NO_PAGE,
        }
    }

    /// Decodes one tree node from its page. The entry count comes off raw
    /// page bytes, so it is validated against what the page can physically
    /// hold *before* it sizes any allocation or offset arithmetic.
    // roadlint: decode-fn
    // roadlint: allow(panic-fn) reason="every offset below is bounded by the count validation at the top"
    fn decode(page: &Page, int_cap: usize) -> Result<Self, StorageError> {
        let b = page.bytes();
        let tag = b[0];
        let count = u16::from_le_bytes([b[2], b[3]]) as usize;
        if tag == TAG_LEAF {
            if 8 + count * 16 > PAGE_SIZE {
                return Err(StorageError::CorruptPage("leaf entry count exceeds page capacity"));
            }
            let next = le_u32(b, 4);
            let mut keys = Vec::with_capacity(count);
            let mut vals = Vec::with_capacity(count);
            for i in 0..count {
                let off = 8 + i * 16;
                keys.push(le_u64(b, off));
                vals.push(le_u64(b, off + 8));
            }
            Ok(BNode { leaf: true, keys, vals, children: Vec::new(), next })
        } else if tag == TAG_INTERNAL {
            if count > int_cap {
                return Err(StorageError::CorruptPage("internal key count exceeds fanout"));
            }
            let mut keys = Vec::with_capacity(count);
            for i in 0..count {
                let off = 8 + i * 8;
                keys.push(le_u64(b, off));
            }
            let child_base = 8 + int_cap * 8;
            let mut children = Vec::with_capacity(count + 1);
            for i in 0..=count {
                let off = child_base + i * 4;
                children.push(le_u32(b, off));
            }
            Ok(BNode { leaf: false, keys, vals: Vec::new(), children, next: NO_PAGE })
        } else {
            Err(StorageError::CorruptPage("unknown B+-tree node tag"))
        }
    }

    // roadlint: allow(panic-fn) reason="write path encodes nodes the tree built itself; counts are bounded by the fanout invariant"
    fn encode(&self, page: &mut Page, int_cap: usize) {
        let b = page.bytes_mut();
        b[0] = if self.leaf { TAG_LEAF } else { TAG_INTERNAL };
        b[1] = 0;
        let count = self.keys.len() as u16;
        b[2..4].copy_from_slice(&count.to_le_bytes());
        if self.leaf {
            b[4..8].copy_from_slice(&self.next.to_le_bytes());
            for (i, (&k, &v)) in self.keys.iter().zip(&self.vals).enumerate() {
                let off = 8 + i * 16;
                b[off..off + 8].copy_from_slice(&k.to_le_bytes());
                b[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
            }
        } else {
            for (i, &k) in self.keys.iter().enumerate() {
                let off = 8 + i * 8;
                b[off..off + 8].copy_from_slice(&k.to_le_bytes());
            }
            let child_base = 8 + int_cap * 8;
            for (i, &c) in self.children.iter().enumerate() {
                let off = child_base + i * 4;
                b[off..off + 4].copy_from_slice(&c.to_le_bytes());
            }
        }
    }
}

impl BPlusTree {
    /// Creates an empty tree with default (page-filling) fanouts.
    pub fn new(pool: &mut impl PagePool) -> Result<Self, StorageError> {
        Self::with_caps(pool, DEFAULT_LEAF_CAP, DEFAULT_INT_CAP)
    }

    /// Creates an empty tree with explicit fanouts (tests use small ones).
    ///
    /// # Panics
    /// Panics on fanouts that are too small to split (< 3) or that would
    /// not fit a page.
    pub fn with_caps(
        pool: &mut impl PagePool,
        leaf_cap: usize,
        int_cap: usize,
    ) -> Result<Self, StorageError> {
        // roadlint: allow(panic) reason="construction-time configuration check, not a serving path"
        assert!(leaf_cap >= 3 && int_cap >= 3, "B+-tree fanout too small");
        // roadlint: allow(panic) reason="construction-time configuration check, not a serving path"
        assert!(8 + leaf_cap * 16 <= PAGE_SIZE, "leaf fanout does not fit a page");
        // roadlint: allow(panic) reason="construction-time configuration check, not a serving path"
        assert!(
            8 + int_cap * 8 + (int_cap + 1) * 4 <= PAGE_SIZE,
            "internal fanout does not fit a page"
        );
        let root = pool.alloc()?;
        let tree = BPlusTree {
            root,
            height: 0,
            len: 0,
            leaf_cap,
            int_cap,
            live_pages: 1,
            free_list: Vec::new(),
        };
        tree.write_node(pool, root, &BNode::new_leaf())?;
        Ok(tree)
    }

    fn read_node(&self, pool: &mut impl PagePool, id: PageId) -> Result<BNode, StorageError> {
        let cap = self.int_cap;
        pool.with_page(id, |p| BNode::decode(p, cap))?
    }

    fn write_node(
        &self,
        pool: &mut impl PagePool,
        id: PageId,
        node: &BNode,
    ) -> Result<(), StorageError> {
        let cap = self.int_cap;
        pool.with_page_mut(id, |p| node.encode(p, cap))
    }

    fn alloc_node(&mut self, pool: &mut impl PagePool) -> Result<PageId, StorageError> {
        self.live_pages += 1;
        match self.free_list.pop() {
            Some(id) => Ok(id),
            None => pool.alloc(),
        }
    }

    fn free_node(&mut self, id: PageId) {
        self.live_pages -= 1;
        self.free_list.push(id);
    }

    /// Number of stored entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages currently owned by the tree (its on-disk size in pages).
    pub fn num_pages(&self) -> usize {
        self.live_pages
    }

    /// On-disk size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.live_pages * PAGE_SIZE
    }

    /// Tree height (0 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Looks up `key`. This is the serving read path: a corrupt node is an
    /// `Err`, never an out-of-range index.
    pub fn get(&self, pool: &mut impl PagePool, key: u64) -> Result<Option<u64>, StorageError> {
        let mut page = self.root;
        for _ in 0..self.height {
            let node = self.read_node(pool, page)?;
            let idx = node.keys.partition_point(|&k| k <= key);
            let child = node
                .children
                .get(idx)
                .copied()
                .ok_or(StorageError::CorruptPage("internal node missing a child slot"))?;
            page = PageId(child);
        }
        let leaf = self.read_node(pool, page)?;
        let idx = leaf.keys.partition_point(|&k| k < key);
        Ok(match (leaf.keys.get(idx), leaf.vals.get(idx)) {
            (Some(&k), Some(&v)) if k == key => Some(v),
            _ => None,
        })
    }

    /// Inserts `key -> val`; returns the previous value if the key existed.
    pub fn insert(
        &mut self,
        pool: &mut impl PagePool,
        key: u64,
        val: u64,
    ) -> Result<Option<u64>, StorageError> {
        // Preemptive root split keeps the downward pass single-pass.
        let root_node = self.read_node(pool, self.root)?;
        if self.is_full(&root_node) {
            let old_root = self.root;
            let new_root_page = self.alloc_node(pool)?;
            let mut new_root = BNode::new_internal();
            new_root.children.push(old_root.0);
            self.write_node(pool, new_root_page, &new_root)?;
            self.split_child(pool, new_root_page, 0)?;
            self.root = new_root_page;
            self.height += 1;
        }
        self.insert_nonfull(pool, self.root, self.height, key, val)
    }

    fn is_full(&self, node: &BNode) -> bool {
        if node.leaf {
            node.keys.len() >= self.leaf_cap
        } else {
            node.keys.len() >= self.int_cap
        }
    }

    /// Splits the full child at `child_idx` of the internal node `parent`.
    // roadlint: allow(panic-fn) reason="build/maintenance write path over nodes the tree built; indices bounded by the fanout invariant"
    fn split_child(
        &mut self,
        pool: &mut impl PagePool,
        parent_page: PageId,
        child_idx: usize,
    ) -> Result<(), StorageError> {
        let mut parent = self.read_node(pool, parent_page)?;
        let child_page = PageId(parent.children[child_idx]);
        let mut child = self.read_node(pool, child_page)?;
        let right_page = self.alloc_node(pool)?;

        if child.leaf {
            let mid = child.keys.len() / 2;
            let mut right = BNode::new_leaf();
            right.keys = child.keys.split_off(mid);
            right.vals = child.vals.split_off(mid);
            right.next = child.next;
            child.next = right_page.0;
            let separator = right.keys[0];
            parent.keys.insert(child_idx, separator);
            parent.children.insert(child_idx + 1, right_page.0);
            self.write_node(pool, right_page, &right)?;
        } else {
            let mid = child.keys.len() / 2;
            let mut right = BNode::new_internal();
            right.keys = child.keys.split_off(mid + 1);
            let separator = child
                .keys
                .pop()
                .ok_or(StorageError::Internal("split of an internal node without keys"))?;
            right.children = child.children.split_off(mid + 1);
            parent.keys.insert(child_idx, separator);
            parent.children.insert(child_idx + 1, right_page.0);
            self.write_node(pool, right_page, &right)?;
        }
        self.write_node(pool, child_page, &child)?;
        self.write_node(pool, parent_page, &parent)
    }

    // roadlint: allow(panic-fn) reason="build/maintenance write path; indices bounded by the preemptive-split invariant"
    fn insert_nonfull(
        &mut self,
        pool: &mut impl PagePool,
        page: PageId,
        level: u32,
        key: u64,
        val: u64,
    ) -> Result<Option<u64>, StorageError> {
        if level == 0 {
            let mut leaf = self.read_node(pool, page)?;
            let idx = leaf.keys.partition_point(|&k| k < key);
            if idx < leaf.keys.len() && leaf.keys[idx] == key {
                let old = leaf.vals[idx];
                leaf.vals[idx] = val;
                self.write_node(pool, page, &leaf)?;
                return Ok(Some(old));
            }
            leaf.keys.insert(idx, key);
            leaf.vals.insert(idx, val);
            self.write_node(pool, page, &leaf)?;
            self.len += 1;
            return Ok(None);
        }
        let node = self.read_node(pool, page)?;
        let mut idx = node.keys.partition_point(|&k| k <= key);
        let child_page = PageId(node.children[idx]);
        let child = self.read_node(pool, child_page)?;
        if self.is_full(&child) {
            self.split_child(pool, page, idx)?;
            // Re-read: the separator decides which half we descend into.
            let node = self.read_node(pool, page)?;
            if key >= node.keys[idx] {
                idx += 1;
            }
            let child_page = PageId(node.children[idx]);
            return self.insert_nonfull(pool, child_page, level - 1, key, val);
        }
        self.insert_nonfull(pool, child_page, level - 1, key, val)
    }

    /// Removes `key`; returns its value if it existed.
    // roadlint: allow(panic-fn) reason="build/maintenance write path; root shrink indexes children[0] of a non-empty internal root"
    pub fn remove(
        &mut self,
        pool: &mut impl PagePool,
        key: u64,
    ) -> Result<Option<u64>, StorageError> {
        let removed = self.remove_rec(pool, self.root, self.height, key)?;
        if removed.is_some() {
            self.len -= 1;
            // Shrink the root when an internal root lost all separators.
            if self.height > 0 {
                let root = self.read_node(pool, self.root)?;
                if root.keys.is_empty() {
                    let old_root = self.root;
                    self.root = PageId(root.children[0]);
                    self.free_node(old_root);
                    self.height -= 1;
                }
            }
        }
        Ok(removed)
    }

    fn min_keys(&self, leaf: bool) -> usize {
        if leaf {
            self.leaf_cap / 2
        } else {
            self.int_cap / 2
        }
    }

    // roadlint: allow(panic-fn) reason="build/maintenance write path; indices bounded by partition_point over the node's own keys"
    fn remove_rec(
        &mut self,
        pool: &mut impl PagePool,
        page: PageId,
        level: u32,
        key: u64,
    ) -> Result<Option<u64>, StorageError> {
        if level == 0 {
            let mut leaf = self.read_node(pool, page)?;
            let idx = leaf.keys.partition_point(|&k| k < key);
            if idx < leaf.keys.len() && leaf.keys[idx] == key {
                leaf.keys.remove(idx);
                let old = leaf.vals.remove(idx);
                self.write_node(pool, page, &leaf)?;
                return Ok(Some(old));
            }
            return Ok(None);
        }
        let node = self.read_node(pool, page)?;
        let idx = node.keys.partition_point(|&k| k <= key);
        let child_page = PageId(node.children[idx]);
        let Some(removed) = self.remove_rec(pool, child_page, level - 1, key)? else {
            return Ok(None);
        };
        // Rebalance the child if it underflowed.
        let child = self.read_node(pool, child_page)?;
        if child.keys.len() < self.min_keys(child.leaf) {
            self.fix_underflow(pool, page, idx, level - 1)?;
        }
        Ok(Some(removed))
    }

    /// Restores the invariant for the child at `child_idx` of `parent_page`
    /// by borrowing from a sibling or merging with one.
    // roadlint: allow(panic-fn) reason="build/maintenance write path; sibling indices exist whenever the parent has a separator"
    fn fix_underflow(
        &mut self,
        pool: &mut impl PagePool,
        parent_page: PageId,
        child_idx: usize,
        _child_level: u32,
    ) -> Result<(), StorageError> {
        let mut parent = self.read_node(pool, parent_page)?;
        let child_page = PageId(parent.children[child_idx]);
        let mut child = self.read_node(pool, child_page)?;
        let min = self.min_keys(child.leaf);

        // Try borrowing from the left sibling.
        if child_idx > 0 {
            let left_page = PageId(parent.children[child_idx - 1]);
            let mut left = self.read_node(pool, left_page)?;
            if left.keys.len() > min {
                if child.leaf {
                    let k = left
                        .keys
                        .pop()
                        .ok_or(StorageError::Internal("borrow from an empty left leaf"))?;
                    let v = left
                        .vals
                        .pop()
                        .ok_or(StorageError::Internal("leaf keys/vals out of sync"))?;
                    child.keys.insert(0, k);
                    child.vals.insert(0, v);
                    parent.keys[child_idx - 1] = child.keys[0];
                } else {
                    let sep = parent.keys[child_idx - 1];
                    let k = left
                        .keys
                        .pop()
                        .ok_or(StorageError::Internal("borrow from an empty left node"))?;
                    let c = left
                        .children
                        .pop()
                        .ok_or(StorageError::Internal("internal keys/children out of sync"))?;
                    child.keys.insert(0, sep);
                    child.children.insert(0, c);
                    parent.keys[child_idx - 1] = k;
                }
                self.write_node(pool, left_page, &left)?;
                self.write_node(pool, child_page, &child)?;
                return self.write_node(pool, parent_page, &parent);
            }
        }
        // Try borrowing from the right sibling.
        if child_idx + 1 < parent.children.len() {
            let right_page = PageId(parent.children[child_idx + 1]);
            let mut right = self.read_node(pool, right_page)?;
            if right.keys.len() > min {
                if child.leaf {
                    let k = right.keys.remove(0);
                    let v = right.vals.remove(0);
                    child.keys.push(k);
                    child.vals.push(v);
                    parent.keys[child_idx] = right.keys[0];
                } else {
                    let sep = parent.keys[child_idx];
                    let k = right.keys.remove(0);
                    let c = right.children.remove(0);
                    child.keys.push(sep);
                    child.children.push(c);
                    parent.keys[child_idx] = k;
                }
                self.write_node(pool, right_page, &right)?;
                self.write_node(pool, child_page, &child)?;
                return self.write_node(pool, parent_page, &parent);
            }
        }
        // Merge with a sibling. Normalise to "merge child_idx with its right
        // neighbour" by shifting the index left when child is rightmost.
        let (li, ri) = if child_idx + 1 < parent.children.len() {
            (child_idx, child_idx + 1)
        } else {
            (child_idx - 1, child_idx)
        };
        let left_page = PageId(parent.children[li]);
        let right_page = PageId(parent.children[ri]);
        let mut left = self.read_node(pool, left_page)?;
        let right = self.read_node(pool, right_page)?;
        if left.leaf {
            left.keys.extend_from_slice(&right.keys);
            left.vals.extend_from_slice(&right.vals);
            left.next = right.next;
        } else {
            let sep = parent.keys[li];
            left.keys.push(sep);
            left.keys.extend_from_slice(&right.keys);
            left.children.extend_from_slice(&right.children);
        }
        parent.keys.remove(li);
        parent.children.remove(ri);
        self.free_node(right_page);
        self.write_node(pool, left_page, &left)?;
        self.write_node(pool, parent_page, &parent)
    }

    /// All entries with `lo <= key <= hi`, in key order. Serving read path:
    /// index-free like [`BPlusTree::get`].
    pub fn range(
        &self,
        pool: &mut impl PagePool,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, u64)>, StorageError> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        // Descend to the leaf that would contain `lo`.
        let mut page = self.root;
        for _ in 0..self.height {
            let node = self.read_node(pool, page)?;
            let idx = node.keys.partition_point(|&k| k <= lo);
            let child = node
                .children
                .get(idx)
                .copied()
                .ok_or(StorageError::CorruptPage("internal node missing a child slot"))?;
            page = PageId(child);
        }
        loop {
            let leaf = self.read_node(pool, page)?;
            for (&k, &v) in leaf.keys.iter().zip(&leaf.vals) {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            if leaf.next == NO_PAGE {
                return Ok(out);
            }
            page = PageId(leaf.next);
        }
    }

    /// Every entry in key order (diagnostics / verification).
    pub fn entries(&self, pool: &mut impl PagePool) -> Result<Vec<(u64, u64)>, StorageError> {
        self.range(pool, 0, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::store::PageStore;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn pool() -> BufferPool {
        BufferPool::new(PageStore::new(), 64)
    }

    #[test]
    fn empty_tree() {
        let mut p = pool();
        let t = BPlusTree::new(&mut p).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&mut p, 7).unwrap(), None);
        assert_eq!(t.num_pages(), 1);
        assert!(t.entries(&mut p).unwrap().is_empty());
    }

    #[test]
    fn insert_get_update() {
        let mut p = pool();
        let mut t = BPlusTree::new(&mut p).unwrap();
        assert_eq!(t.insert(&mut p, 5, 50).unwrap(), None);
        assert_eq!(t.insert(&mut p, 3, 30).unwrap(), None);
        assert_eq!(t.insert(&mut p, 9, 90).unwrap(), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&mut p, 3).unwrap(), Some(30));
        assert_eq!(t.insert(&mut p, 3, 31).unwrap(), Some(30));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&mut p, 3).unwrap(), Some(31));
        assert_eq!(t.get(&mut p, 4).unwrap(), None);
    }

    #[test]
    fn splits_build_height_with_tiny_fanout() {
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in 0..200u64 {
            t.insert(&mut p, k, k * 10).unwrap();
        }
        assert!(t.height() >= 3, "height = {}", t.height());
        for k in 0..200u64 {
            assert_eq!(t.get(&mut p, k).unwrap(), Some(k * 10), "key {k}");
        }
        let all = t.entries(&mut p).unwrap();
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "leaf chain out of order");
    }

    #[test]
    fn reverse_and_shuffled_insertions() {
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in (0..100u64).rev() {
            t.insert(&mut p, k, k).unwrap();
        }
        assert_eq!(t.entries(&mut p).unwrap().len(), 100);
        let mut p2 = pool();
        let mut t2 = BPlusTree::with_caps(&mut p2, 4, 4).unwrap();
        let mut keys: Vec<u64> = (0..100).collect();
        use rand::seq::SliceRandom;
        keys.shuffle(&mut StdRng::seed_from_u64(3));
        for &k in &keys {
            t2.insert(&mut p2, k, k).unwrap();
        }
        assert_eq!(t.entries(&mut p).unwrap(), t2.entries(&mut p2).unwrap());
    }

    #[test]
    fn range_queries() {
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in (0..100u64).step_by(2) {
            t.insert(&mut p, k, k + 1).unwrap();
        }
        assert_eq!(
            t.range(&mut p, 10, 20).unwrap(),
            vec![(10, 11), (12, 13), (14, 15), (16, 17), (18, 19), (20, 21)]
        );
        assert_eq!(t.range(&mut p, 11, 11).unwrap(), vec![]);
        assert_eq!(t.range(&mut p, 95, 200).unwrap(), vec![(96, 97), (98, 99)]);
        assert_eq!(t.range(&mut p, 20, 10).unwrap(), vec![]);
    }

    #[test]
    fn remove_with_rebalancing() {
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in 0..300u64 {
            t.insert(&mut p, k, k).unwrap();
        }
        let pages_full = t.num_pages();
        // Remove everything in an order that exercises borrows and merges.
        for k in (0..300u64).step_by(3) {
            assert_eq!(t.remove(&mut p, k).unwrap(), Some(k));
        }
        for k in (1..300u64).step_by(3) {
            assert_eq!(t.remove(&mut p, k).unwrap(), Some(k));
        }
        for k in (2..300u64).step_by(3) {
            assert_eq!(t.remove(&mut p, k).unwrap(), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0, "tree should shrink back to a single leaf");
        assert_eq!(t.num_pages(), 1);
        assert!(t.num_pages() < pages_full);
        assert_eq!(t.remove(&mut p, 5).unwrap(), None);
    }

    #[test]
    fn model_test_against_btreemap() {
        let mut rng = StdRng::seed_from_u64(1234);
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 5).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..4000 {
            let key = rng.random_range(0..500u64);
            match rng.random_range(0..4) {
                0 | 1 => {
                    let val = rng.random_range(0..1_000_000u64);
                    assert_eq!(t.insert(&mut p, key, val).unwrap(), model.insert(key, val));
                }
                2 => {
                    assert_eq!(t.remove(&mut p, key).unwrap(), model.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(&mut p, key).unwrap(), model.get(&key).copied());
                }
            }
            assert_eq!(t.len() as usize, model.len());
        }
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(t.entries(&mut p).unwrap(), expect);
    }

    #[test]
    fn tree_survives_cold_cache() {
        let mut p = BufferPool::new(PageStore::new(), 8); // tiny pool
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in 0..500u64 {
            t.insert(&mut p, k, !k).unwrap();
        }
        p.clear_cache();
        for k in (0..500u64).step_by(17) {
            assert_eq!(t.get(&mut p, k).unwrap(), Some(!k));
        }
        assert!(p.stats().page_faults > 0);
    }

    #[test]
    fn page_accounting_tracks_live_pages() {
        let mut p = pool();
        let mut t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        for k in 0..64u64 {
            t.insert(&mut p, k, k).unwrap();
        }
        let peak = t.num_pages();
        assert!(peak > 10);
        for k in 0..64u64 {
            t.remove(&mut p, k).unwrap();
        }
        assert_eq!(t.num_pages(), 1);
        // Freed pages get recycled by later inserts.
        for k in 0..64u64 {
            t.insert(&mut p, k, k).unwrap();
        }
        assert!(t.num_pages() <= peak);
    }

    /// A page whose header claims more entries than fit the page must come
    /// back as `CorruptPage`, not as a hostile-sized allocation or an
    /// out-of-range read.
    #[test]
    fn corrupt_counts_surface_as_errors() {
        let mut p = pool();
        let t = BPlusTree::with_caps(&mut p, 4, 4).unwrap();
        // Overwrite the root leaf's count with an impossible value.
        let root = t.root;
        p.with_page_mut(root, |pg| {
            pg.bytes_mut()[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        })
        .unwrap();
        assert_eq!(
            t.get(&mut p, 1),
            Err(StorageError::CorruptPage("leaf entry count exceeds page capacity"))
        );
        // An internal node claiming more keys than its fanout: tag byte 1,
        // count larger than int_cap but small enough to "fit" a page.
        p.with_page_mut(root, |pg| {
            let b = pg.bytes_mut();
            b[0] = 1; // TAG_INTERNAL
            b[2..4].copy_from_slice(&100u16.to_le_bytes());
        })
        .unwrap();
        assert_eq!(
            t.get(&mut p, 1),
            Err(StorageError::CorruptPage("internal key count exceeds fanout"))
        );
        // Unknown tag.
        p.with_page_mut(root, |pg| pg.bytes_mut()[0] = 9).unwrap();
        assert_eq!(t.get(&mut p, 1), Err(StorageError::CorruptPage("unknown B+-tree node tag")));
    }
}
