//! The buffer pool: LRU page frames with dirty write-back.
//!
//! Matches the paper's cache model: a fixed number of frames (50 by
//! default) replaced LRU, cold at the start of every measured query.
// roadlint: serving-path

use crate::error::StorageError;
use crate::lru::LruCache;
use crate::page::{Page, PageId};
use crate::store::PageStore;

/// Buffer-pool counters. `page_faults` is the paper's I/O metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page accesses through the pool.
    pub logical_reads: u64,
    /// Accesses that missed the cache and hit the store.
    pub page_faults: u64,
    /// Dirty pages written back (on eviction or flush).
    pub write_backs: u64,
}

impl BufferStats {
    /// Fraction of accesses served from the cache. Defined at zero reads:
    /// a pool that has served no accesses has missed none, so the rate is
    /// `1.0` (never `NaN`) — the same convention as
    /// `SearchStats::buffer_hit_rate` in the core crate.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.page_faults as f64 / self.logical_reads as f64
        }
    }
}

/// Page-granular storage access: what the paged [`crate::BPlusTree`] needs
/// from its backing pool. Implemented by the single-threaded [`BufferPool`]
/// and by [`crate::striped::TalliedPool`], a per-query view of the
/// concurrent [`crate::striped::StripedBufferPool`].
///
/// Every method is fallible: the striped implementation surfaces a
/// poisoned stripe or store lock as [`StorageError::LockPoisoned`] instead
/// of panicking the serving thread, so the trait carries the `Result`
/// through to every caller.
pub trait PagePool {
    /// Allocates a fresh zeroed page (cached clean).
    fn alloc(&mut self) -> Result<PageId, StorageError>;
    /// Reads page `id` through the cache.
    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R, StorageError>;
    /// Mutates page `id` through the cache, marking it dirty.
    fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError>;
}

struct Frame {
    page: Page,
    dirty: bool,
}

/// An LRU buffer pool over a [`PageStore`].
pub struct BufferPool {
    store: PageStore,
    frames: LruCache<u32, Frame>,
    stats: BufferStats,
}

impl BufferPool {
    /// Wraps `store` with a pool of `capacity` frames.
    pub fn new(store: PageStore, capacity: usize) -> Self {
        BufferPool { store, frames: LruCache::new(capacity), stats: BufferStats::default() }
    }

    /// A pool over a fresh store with the paper's 50-frame default.
    pub fn default_sized() -> Self {
        BufferPool::new(PageStore::new(), crate::DEFAULT_BUFFER_PAGES)
    }

    /// Allocates a fresh zeroed page (cached clean).
    pub fn alloc(&mut self) -> PageId {
        let id = self.store.alloc();
        self.cache_insert(id.0, Frame { page: Page::zeroed(), dirty: false });
        id
    }

    fn cache_insert(&mut self, id: u32, frame: Frame) {
        if let Some((evicted_id, evicted)) = self.frames.put(id, frame) {
            if evicted.dirty {
                self.stats.write_backs += 1;
                self.store.write(PageId(evicted_id), &evicted.page);
            }
        }
    }

    /// Faults `id` in if absent and returns its frame. The lookup after
    /// the fault-in cannot miss (the LRU holds at least one frame and the
    /// admitted page is the most recent), but the invariant is reported as
    /// `Err` rather than unwound: serving threads must survive storage
    /// bugs.
    fn frame_mut(&mut self, id: PageId) -> Result<&mut Frame, StorageError> {
        self.stats.logical_reads += 1;
        if !self.frames.contains(&id.0) {
            self.stats.page_faults += 1;
            let page = self.store.read(id);
            self.cache_insert(id.0, Frame { page, dirty: false });
        }
        self.frames.get(&id.0).ok_or(StorageError::Internal("frame evicted during fault-in"))
    }

    /// Reads page `id` through the cache.
    pub fn with_page<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R, StorageError> {
        let frame = self.frame_mut(id)?;
        Ok(f(&frame.page))
    }

    /// Mutates page `id` through the cache, marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError> {
        let frame = self.frame_mut(id)?;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Writes every dirty frame back to the store (frames stay cached).
    pub fn flush(&mut self) {
        // Collect dirty ids first; iteration cannot borrow mutably.
        let dirty: Vec<u32> =
            self.frames.iter().filter(|(_, fr)| fr.dirty).map(|(id, _)| *id).collect();
        for id in dirty {
            let Some(frame) = self.frames.get(&id) else { continue };
            frame.dirty = false;
            let page = frame.page.clone();
            self.stats.write_backs += 1;
            self.store.write(PageId(id), &page);
        }
    }

    /// Flushes and empties the cache — the paper initialises every query
    /// with an empty cache.
    pub fn clear_cache(&mut self) {
        self.flush();
        self.frames.clear();
    }

    /// Pool counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Zeroes the pool counters (cache contents unchanged).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// The underlying store (for size accounting).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Number of frames the pool may hold.
    pub fn capacity(&self) -> usize {
        self.frames.capacity()
    }
}

impl PagePool for BufferPool {
    fn alloc(&mut self) -> Result<PageId, StorageError> {
        Ok(BufferPool::alloc(self))
    }

    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R, StorageError> {
        BufferPool::with_page(self, id, f)
    }

    fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError> {
        BufferPool::with_page_mut(self, id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_reads_do_not_fault() {
        let mut pool = BufferPool::new(PageStore::new(), 4);
        let p = pool.alloc();
        pool.reset_stats();
        for _ in 0..10 {
            pool.with_page(p, |pg| assert_eq!(pg.bytes()[0], 0)).unwrap();
        }
        let st = pool.stats();
        assert_eq!(st.logical_reads, 10);
        assert_eq!(st.page_faults, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut pool = BufferPool::new(PageStore::new(), 2);
        let a = pool.alloc();
        pool.with_page_mut(a, |pg| pg.bytes_mut()[0] = 42).unwrap();
        // Fill the pool until `a` is evicted.
        let _b = pool.alloc();
        let _c = pool.alloc();
        assert!(pool.stats().write_backs >= 1);
        // Fault `a` back in: the write-back preserved the data.
        pool.with_page(a, |pg| assert_eq!(pg.bytes()[0], 42)).unwrap();
        assert!(pool.stats().page_faults >= 1);
    }

    #[test]
    fn clear_cache_then_cold_reads_fault() {
        let mut pool = BufferPool::new(PageStore::new(), 8);
        let ids: Vec<PageId> = (0..4).map(|_| pool.alloc()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page_mut(id, |pg| pg.bytes_mut()[0] = i as u8).unwrap();
        }
        pool.clear_cache();
        pool.reset_stats();
        for (i, &id) in ids.iter().enumerate() {
            pool.with_page(id, |pg| assert_eq!(pg.bytes()[0], i as u8)).unwrap();
        }
        assert_eq!(pool.stats().page_faults, 4);
        // Second round is warm.
        for &id in &ids {
            pool.with_page(id, |_| ()).unwrap();
        }
        assert_eq!(pool.stats().page_faults, 4);
    }

    #[test]
    fn flush_persists_without_dropping_frames() {
        let mut pool = BufferPool::new(PageStore::new(), 4);
        let a = pool.alloc();
        pool.with_page_mut(a, |pg| pg.bytes_mut()[1] = 9).unwrap();
        pool.flush();
        pool.reset_stats();
        pool.with_page(a, |pg| assert_eq!(pg.bytes()[1], 9)).unwrap();
        assert_eq!(pool.stats().page_faults, 0, "flush must not evict");
    }
}
