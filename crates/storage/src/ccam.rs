//! Connectivity-clustered node-to-page assignment (CCAM, ref \[18\]).
//!
//! Shekhar & Liu's CCAM stores network nodes so that nodes adjacent in the
//! graph tend to share a disk page, which makes network expansion touch far
//! fewer pages than random placement. The paper stores the node records of
//! *all* evaluated approaches this way.
//!
//! We implement the standard approximation: order nodes by a breadth-first
//! traversal (neighbours end up adjacent in the order) and pack records
//! into pages first-fit in that order. Records larger than a page span
//! multiple consecutive pages (Distance Index signatures routinely do).

use crate::page::PAGE_SIZE;
use road_network::graph::RoadNetwork;
use road_network::ids::NodeId;

/// Exact placement of one record: which pages it occupies and where its
/// bytes start. Small records sit at `offset` within their single page;
/// multi-page records always start at offset 0 of `page` and run
/// contiguously across `span` pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLocation {
    /// First page of the record.
    pub page: u32,
    /// Number of consecutive pages spanned (>= 1 for non-empty records).
    pub span: u32,
    /// Byte offset of the record within its first page.
    pub offset: u32,
}

/// Result of clustering: where each node's record lives.
#[derive(Clone, Debug)]
pub struct NodeClustering {
    /// Per node: (first page, number of pages spanned, offset in page).
    locs: Vec<RecordLocation>,
    num_pages: u32,
    total_bytes: usize,
}

impl NodeClustering {
    /// Packs every node's record into pages along a BFS order.
    ///
    /// `record_size(n)` is the serialized size of node `n`'s record in
    /// bytes (adjacency lists, shortcut trees, signatures, ... — whatever
    /// the approach stores per node).
    pub fn build(g: &RoadNetwork, record_size: impl Fn(NodeId) -> usize) -> Self {
        let order = bfs_order(g);
        let mut locs = vec![RecordLocation { page: 0, span: 0, offset: 0 }; g.num_nodes()];
        let mut page = 0u32;
        let mut fill = 0usize;
        let mut total_bytes = 0usize;
        for n in order {
            let size = record_size(n);
            total_bytes += size;
            if size > PAGE_SIZE {
                // Multi-page record: starts on a fresh page.
                if fill > 0 {
                    page += 1;
                    fill = 0;
                }
                let span = size.div_ceil(PAGE_SIZE) as u32;
                locs[n.index()] = RecordLocation { page, span, offset: 0 };
                page += span;
            } else {
                if fill + size > PAGE_SIZE {
                    page += 1;
                    fill = 0;
                }
                locs[n.index()] = RecordLocation { page, span: 1, offset: fill as u32 };
                fill += size;
            }
        }
        let num_pages = if fill > 0 { page + 1 } else { page };
        NodeClustering { locs, num_pages, total_bytes }
    }

    /// `(first page, span)` of a node's record.
    #[inline]
    pub fn span_of(&self, n: NodeId) -> (u32, u32) {
        let loc = self.locs[n.index()];
        (loc.page, loc.span)
    }

    /// Exact placement of a node's record, including the byte offset within
    /// its first page — what a writer needs to lay the record's actual
    /// bytes onto [`crate::store::PageStore`] pages.
    #[inline]
    pub fn locate(&self, n: NodeId) -> RecordLocation {
        self.locs[n.index()]
    }

    /// Total pages used.
    pub fn num_pages(&self) -> usize {
        self.num_pages as usize
    }

    /// Sum of record sizes (before page rounding).
    pub fn payload_bytes(&self) -> usize {
        self.total_bytes
    }

    /// On-disk size (pages × 4 KB).
    pub fn size_bytes(&self) -> usize {
        self.num_pages() * PAGE_SIZE
    }
}

/// BFS order over the network, covering every component deterministically.
fn bfs_order(g: &RoadNetwork) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(NodeId(start as u32));
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (_, v) in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use road_network::generator::simple;

    #[test]
    fn packs_all_nodes_and_counts_pages() {
        let g = simple::grid(10, 10, 1.0);
        let c = NodeClustering::build(&g, |_| 100);
        // 40 records of 100 B fit one 4096 B page; 100 records -> 3 pages.
        assert_eq!(c.num_pages(), 3);
    }

    #[test]
    fn page_count_matches_first_fit() {
        let g = simple::chain(100, 1.0);
        let c = NodeClustering::build(&g, |_| 1000);
        // 4 records of 1000 B fit a page -> 25 pages.
        assert_eq!(c.num_pages(), 25);
        assert_eq!(c.payload_bytes(), 100_000);
        assert_eq!(c.size_bytes(), 25 * PAGE_SIZE);
    }

    #[test]
    fn adjacent_chain_nodes_share_pages() {
        let g = simple::chain(64, 1.0);
        let c = NodeClustering::build(&g, |_| 256); // 16 per page
        let mut co_located = 0;
        for e in g.edge_ids() {
            let (a, b) = g.edge(e).endpoints();
            if c.span_of(a).0 == c.span_of(b).0 {
                co_located += 1;
            }
        }
        // All but the page-boundary edges share a page.
        assert!(co_located >= 59, "only {co_located} of 63 edges co-located");
    }

    #[test]
    fn oversized_records_span_pages() {
        let g = simple::chain(3, 1.0);
        let c = NodeClustering::build(&g, |n| if n.0 == 1 { 10_000 } else { 64 });
        let (_, span) = c.span_of(NodeId(1));
        assert_eq!(span, 3); // ceil(10000 / 4096)
        assert!(c.num_pages() >= 4);
    }

    #[test]
    fn locations_are_disjoint_and_in_bounds() {
        let g = simple::grid(8, 8, 1.0);
        let size = |n: NodeId| 200 + (n.0 as usize * 131) % 1100;
        let c = NodeClustering::build(&g, size);
        // Every record occupies its own byte range; collect and sort the
        // absolute ranges and check for overlap.
        let mut ranges: Vec<(usize, usize)> = g
            .node_ids()
            .map(|n| {
                let loc = c.locate(n);
                let start = loc.page as usize * PAGE_SIZE + loc.offset as usize;
                (start, start + size(n))
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "records overlap: {:?} vs {:?}", w[0], w[1]);
        }
        for n in g.node_ids() {
            let loc = c.locate(n);
            assert!((loc.offset as usize) < PAGE_SIZE);
            if loc.span == 1 {
                assert!(loc.offset as usize + size(n) <= PAGE_SIZE, "single-page record leaks");
            } else {
                assert_eq!(loc.offset, 0, "multi-page records start page-aligned");
            }
            assert!((loc.page + loc.span) as usize <= c.num_pages());
        }
    }

    #[test]
    fn variable_sizes_never_overflow_pages() {
        let g = simple::grid(8, 8, 1.0);
        let size = |n: NodeId| 300 + (n.0 as usize * 97) % 900;
        let c = NodeClustering::build(&g, size);
        // Recompute fill per page and assert <= PAGE_SIZE.
        let mut fill = std::collections::HashMap::new();
        for n in g.node_ids() {
            let (p, span) = c.span_of(n);
            if span == 1 {
                *fill.entry(p).or_insert(0usize) += size(n);
            }
        }
        for (&p, &f) in &fill {
            assert!(f <= PAGE_SIZE, "page {p} overfilled: {f}");
        }
    }
}
