//! Error type for the storage layer's fallible paths.
//!
//! The serving stack must not panic under traffic (the `roadlint`
//! invariant enforced over this crate): a poisoned lock or a page whose
//! decoded header contradicts the page format surfaces as a
//! [`StorageError`] and propagates to the query as an `Err`, never as an
//! unwound thread.

use std::fmt;

/// A failure in the paged-storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// A lock guarding shared pool state was poisoned: some thread
    /// panicked while holding it. The named lock says which one.
    LockPoisoned(&'static str),
    /// A decoded page violated its format invariants (e.g. an entry count
    /// larger than the page can physically hold).
    CorruptPage(&'static str),
    /// An internal invariant did not hold; reported instead of panicking
    /// so a serving thread survives the bug.
    Internal(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::LockPoisoned(which) => {
                write!(f, "{which} lock poisoned by a panicked thread")
            }
            StorageError::CorruptPage(what) => write!(f, "corrupt page: {what}"),
            StorageError::Internal(what) => write!(f, "storage invariant violated: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StorageError::LockPoisoned("stripe").to_string().contains("stripe"));
        assert!(StorageError::CorruptPage("leaf count").to_string().contains("leaf count"));
        assert!(StorageError::Internal("frame evicted").to_string().contains("frame evicted"));
    }
}
