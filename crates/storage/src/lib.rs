//! # road-storage
//!
//! Paged-storage simulator reproducing the disk model of the ROAD paper's
//! evaluation (Section 6): every index is disk-resident with a **4 KB page
//! size** and queries run through a **50-page LRU buffer** that starts cold.
//! The paper's I/O metric counts page faults through exactly this stack, so
//! simulating the same stack lets the reproduction report comparable
//! numbers deterministically.
//!
//! Components:
//!
//! * [`error`] — [`StorageError`], how fallible paths report poisoned
//!   locks and corrupt pages instead of panicking a serving thread;
//! * [`page`] — fixed 4 KB pages and page ids;
//! * [`store`] — the simulated disk (a growable array of pages with
//!   physical read/write counters);
//! * [`lru`] — a generic O(1) LRU cache;
//! * [`buffer`] — the buffer pool: LRU page frames with dirty write-back,
//!   plus the [`PagePool`] access trait;
//! * [`striped`] — the concurrent buffer pool: the LRU sharded into lock
//!   stripes keyed by page id, with atomic global counters and exact
//!   per-query [`IoTally`] deltas (what lets one disk-resident engine
//!   serve many threads);
//! * [`bptree`] — a real paged B+-tree (the paper's Route Overlay and
//!   Association Directory both index by node/Rnet id through B+-trees);
//! * [`ccam`] — connectivity-clustered node-to-page assignment after
//!   Shekhar & Liu's CCAM (ref \[18\]), used for node records by every
//!   evaluated approach;
//! * [`pagemap`] — record-to-page packing plus the per-query
//!   [`pagemap::IoTracker`] used by the experiment harness.

pub mod bptree;
pub mod buffer;
pub mod ccam;
pub mod error;
pub mod lru;
pub mod page;
pub mod pagemap;
pub mod store;
pub mod striped;

pub use bptree::BPlusTree;
pub use buffer::{BufferPool, BufferStats, PagePool};
pub use ccam::{NodeClustering, RecordLocation};
pub use error::StorageError;
pub use lru::LruCache;
pub use page::{PageId, PAGE_SIZE};
pub use pagemap::{IoTracker, PageMap};
pub use store::PageStore;
pub use striped::{IoTally, StripedBufferPool, TalliedPool, DEFAULT_BUFFER_STRIPES};

/// The paper's buffer-pool capacity: "a memory cache of 50 pages with LRU
/// replacement scheme".
pub const DEFAULT_BUFFER_PAGES: usize = 50;
