//! A generic O(1) LRU cache.
//!
//! Backbone of the buffer pool and of the per-query I/O tracker. The
//! intrusive doubly-linked list lives in a slot arena indexed by `usize`,
//! so no per-entry allocation happens after warm-up. Slot values are kept
//! in `Option`s purely so eviction can move them out safely.

use road_network::hash::FastMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: Option<K>,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache. Inserting into a full cache evicts the least
/// recently used entry and returns it.
pub struct LruCache<K: Hash + Eq + Clone, V> {
    map: FastMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: FastMap::default(),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        self.slots[i].value.as_mut()
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&i| self.slots[i].value.as_ref())
    }

    /// `true` if `key` is cached (recency untouched).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts or updates `key`, marking it most recently used. Returns the
    /// evicted `(key, value)` pair when the insert overflowed capacity.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = Some(value);
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        let evicted = if self.map.len() == self.capacity { self.pop_lru() } else { None };
        let slot = Slot { key: Some(key.clone()), value: Some(value), prev: NIL, next: NIL };
        let i = if let Some(free) = self.free.pop() {
            self.slots[free] = slot;
            free
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Removes and returns the least recently used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let i = self.tail;
        self.unlink(i);
        self.free.push(i);
        // A linked slot always has both halves; `zip` expresses that
        // without a panic path.
        let key = self.slots[i].key.take();
        let value = self.slots[i].value.take();
        let entry = key.zip(value);
        if let Some((key, _)) = &entry {
            self.map.remove(key);
        }
        entry
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.slots[i].key = None;
        self.slots[i].value.take()
    }

    /// Drops every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterates entries from most to least recently used.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        LruIter { cache: self, cur: self.head }
    }

    /// Drains all entries in least-recently-used-first order.
    pub fn drain_lru_first(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(kv) = self.pop_lru() {
            out.push(kv);
        }
        out
    }
}

struct LruIter<'a, K: Hash + Eq + Clone, V> {
    cache: &'a LruCache<K, V>,
    cur: usize,
}

impl<'a, K: Hash + Eq + Clone, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let slot = &self.cache.slots[self.cur];
        self.cur = slot.next;
        slot.key.as_ref().zip(slot.value.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert_eq!(c.put(1, "a"), None);
        assert_eq!(c.put(2, "b"), None);
        assert_eq!(c.get(&1), Some(&mut "a")); // 1 becomes MRU
        let evicted = c.put(3, "c");
        assert_eq!(evicted, Some((2, "b"))); // 2 was LRU
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn updating_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // refresh 1
        let evicted = c.put(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(3);
        c.put(1, 1);
        c.put(2, 2);
        assert_eq!(c.remove(&1), Some(1));
        assert_eq!(c.remove(&1), None);
        c.put(3, 3);
        c.put(4, 4);
        assert_eq!(c.len(), 3);
        // arena should not have grown beyond capacity slots
        assert!(c.slots.len() <= 3);
    }

    #[test]
    fn pop_lru_empties_in_order() {
        let mut c = LruCache::new(3);
        c.put('a', 1);
        c.put('b', 2);
        c.put('c', 3);
        c.get(&'a');
        let drained = c.drain_lru_first();
        assert_eq!(drained, vec![('b', 2), ('c', 3), ('a', 1)]);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_is_mru_first() {
        let mut c = LruCache::new(3);
        c.put(1, ());
        c.put(2, ());
        c.put(3, ());
        c.get(&2);
        let keys: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.put(1, 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.put(2, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, ()>::new(0);
    }

    /// Model test against a naive reference implementation.
    #[test]
    fn matches_reference_model() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut lru = LruCache::new(8);
        let mut model: Vec<(u32, u32)> = Vec::new(); // MRU at front
        for step in 0..5_000u32 {
            let key = rng.random_range(0..24u32);
            match rng.random_range(0..3) {
                0 => {
                    // put
                    let evicted = lru.put(key, step);
                    if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(pos);
                        assert!(evicted.is_none());
                    } else if model.len() == 8 {
                        let expect = model.pop().unwrap();
                        assert_eq!(evicted, Some(expect));
                    } else {
                        assert!(evicted.is_none());
                    }
                    model.insert(0, (key, step));
                }
                1 => {
                    // get
                    let got = lru.get(&key).copied();
                    let pos = model.iter().position(|&(k, _)| k == key);
                    assert_eq!(got, pos.map(|p| model[p].1));
                    if let Some(p) = pos {
                        let e = model.remove(p);
                        model.insert(0, e);
                    }
                }
                _ => {
                    // remove
                    let got = lru.remove(&key);
                    let pos = model.iter().position(|&(k, _)| k == key);
                    assert_eq!(got, pos.map(|p| model[p].1));
                    if let Some(p) = pos {
                        model.remove(p);
                    }
                }
            }
            assert_eq!(lru.len(), model.len());
        }
    }
}
