//! Fixed-size pages.

use std::fmt;

/// Page size in bytes; the paper fixes this at 4 KB.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::store::PageStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel for "no page".
    pub const NONE: PageId = PageId(u32::MAX);

    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` unless this is the [`PageId::NONE`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "p{}", self.0)
        } else {
            write!(f, "p<none>")
        }
    }
}

/// One 4 KB page of raw bytes.
#[derive(Clone)]
pub struct Page(Box<[u8; PAGE_SIZE]>);

impl Page {
    /// An all-zero page.
    pub fn zeroed() -> Self {
        Page(Box::new([0u8; PAGE_SIZE]))
    }

    /// Immutable view of the bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Mutable view of the bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_zeroed_and_writable() {
        let mut p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
        p.bytes_mut()[17] = 0xAB;
        assert_eq!(p.bytes()[17], 0xAB);
    }

    #[test]
    fn page_id_sentinel() {
        assert!(!PageId::NONE.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(format!("{:?}", PageId(3)), "p3");
        assert_eq!(format!("{:?}", PageId::NONE), "p<none>");
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(10 * PAGE_SIZE), 10);
    }
}
