//! Record-to-page packing and per-query I/O tracking.
//!
//! The experiment harness models each approach's disk layout as a set of
//! *namespaces* (node records, object records, R-tree nodes, directory
//! pages, ...), each packed by a [`PageMap`] or
//! [`crate::ccam::NodeClustering`]. During a query the engine reports every
//! record it touches; the [`IoTracker`] maps the touches through a cold
//! LRU buffer of the paper's size and counts faults — the paper's "I/O"
//! number.

use crate::lru::LruCache;
use crate::page::PAGE_SIZE;
use road_network::hash::FastMap;

/// Sequential first-fit packer: records are appended in insertion order,
/// records bigger than a page span consecutive pages.
#[derive(Default, Clone, Debug)]
pub struct PageMap {
    spans: FastMap<u64, (u32, u32)>,
    next_page: u32,
    fill: usize,
    total_bytes: usize,
}

impl PageMap {
    /// An empty map.
    pub fn new() -> Self {
        PageMap::default()
    }

    /// Appends a record of `size` bytes keyed by `key`; returns its
    /// `(first page, span)`. Re-inserting a key replaces the mapping but
    /// does not reclaim the old space (delete-and-rebuild is how the
    /// paper's structures compact).
    pub fn insert(&mut self, key: u64, size: usize) -> (u32, u32) {
        self.total_bytes += size;
        let span = if size > PAGE_SIZE {
            if self.fill > 0 {
                self.next_page += 1;
                self.fill = 0;
            }
            let pages = size.div_ceil(PAGE_SIZE) as u32;
            let start = self.next_page;
            self.next_page += pages;
            (start, pages)
        } else {
            if self.fill + size > PAGE_SIZE {
                self.next_page += 1;
                self.fill = 0;
            }
            self.fill += size;
            (self.next_page, 1)
        };
        self.spans.insert(key, span);
        span
    }

    /// `(first page, span)` of a record.
    pub fn lookup(&self, key: u64) -> Option<(u32, u32)> {
        self.spans.get(&key).copied()
    }

    /// Pages allocated so far.
    pub fn num_pages(&self) -> usize {
        (self.next_page + (self.fill > 0) as u32) as usize
    }

    /// Sum of record sizes (before page rounding).
    pub fn payload_bytes(&self) -> usize {
        self.total_bytes
    }

    /// On-disk size (pages × 4 KB).
    pub fn size_bytes(&self) -> usize {
        self.num_pages() * PAGE_SIZE
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no record was inserted.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Counts page faults of an access stream through a cold LRU buffer.
///
/// Pages from different structures live in different `namespace`s so their
/// ids cannot collide.
pub struct IoTracker {
    lru: LruCache<u64, ()>,
    logical: u64,
    faults: u64,
}

impl IoTracker {
    /// A tracker with the given buffer capacity (in pages).
    pub fn new(buffer_pages: usize) -> Self {
        IoTracker { lru: LruCache::new(buffer_pages), logical: 0, faults: 0 }
    }

    /// A tracker with the paper's 50-page buffer.
    pub fn paper_default() -> Self {
        IoTracker::new(crate::DEFAULT_BUFFER_PAGES)
    }

    /// Touches one page.
    #[inline]
    pub fn touch(&mut self, namespace: u32, page: u32) {
        self.logical += 1;
        let key = ((namespace as u64) << 32) | page as u64;
        if self.lru.get(&key).is_none() {
            self.faults += 1;
            self.lru.put(key, ());
        }
    }

    /// Touches `span` consecutive pages starting at `start`.
    #[inline]
    pub fn touch_span(&mut self, namespace: u32, start: u32, span: u32) {
        for p in start..start + span {
            self.touch(namespace, p);
        }
    }

    /// Page faults so far (the paper's I/O metric).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Logical page touches so far.
    pub fn logical(&self) -> u64 {
        self.logical
    }

    /// Empties the buffer and zeroes counters — "in every run, a query is
    /// initialized with an empty cache".
    pub fn reset(&mut self) {
        self.lru.clear();
        self.logical = 0;
        self.faults = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagemap_packs_first_fit() {
        let mut m = PageMap::new();
        assert_eq!(m.insert(1, 3000), (0, 1));
        assert_eq!(m.insert(2, 2000), (1, 1)); // does not fit page 0
        assert_eq!(m.insert(3, 2000), (1, 1)); // fits page 1
        assert_eq!(m.insert(4, 9000), (2, 3)); // spans 3 pages
        assert_eq!(m.insert(5, 10), (5, 1));
        assert_eq!(m.num_pages(), 6);
        assert_eq!(m.lookup(4), Some((2, 3)));
        assert_eq!(m.lookup(9), None);
        assert_eq!(m.payload_bytes(), 3000 + 2000 + 2000 + 9000 + 10);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn empty_pagemap() {
        let m = PageMap::new();
        assert!(m.is_empty());
        assert_eq!(m.num_pages(), 0);
        assert_eq!(m.size_bytes(), 0);
    }

    #[test]
    fn tracker_counts_faults_once_per_resident_page() {
        let mut t = IoTracker::new(10);
        t.touch(0, 1);
        t.touch(0, 1);
        t.touch(0, 2);
        assert_eq!(t.faults(), 2);
        assert_eq!(t.logical(), 3);
    }

    #[test]
    fn tracker_namespaces_do_not_collide() {
        let mut t = IoTracker::new(10);
        t.touch(0, 7);
        t.touch(1, 7);
        assert_eq!(t.faults(), 2);
    }

    #[test]
    fn tracker_evicts_lru() {
        let mut t = IoTracker::new(2);
        t.touch(0, 1);
        t.touch(0, 2);
        t.touch(0, 3); // evicts 1
        t.touch(0, 1); // faults again
        assert_eq!(t.faults(), 4);
    }

    #[test]
    fn tracker_reset_gives_cold_cache() {
        let mut t = IoTracker::new(4);
        t.touch_span(0, 0, 3);
        assert_eq!(t.faults(), 3);
        t.reset();
        assert_eq!(t.faults(), 0);
        t.touch(0, 0);
        assert_eq!(t.faults(), 1, "cache must be cold after reset");
    }
}
