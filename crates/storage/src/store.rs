//! The simulated disk: a growable array of pages with physical I/O
//! counters.

use crate::page::{Page, PageId};

/// Cumulative physical I/O counters of a [`PageStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages read from the store.
    pub reads: u64,
    /// Pages written to the store.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
}

/// An in-memory "disk" of 4 KB pages.
#[derive(Default)]
pub struct PageStore {
    pages: Vec<Page>,
    stats: StoreStats,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> Self {
        PageStore::default()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes occupied on "disk".
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * crate::page::PAGE_SIZE
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Page::zeroed());
        self.stats.allocations += 1;
        id
    }

    /// Reads a page (counted as one physical read).
    ///
    /// # Panics
    /// Panics on an unallocated page id — always a logic error here.
    pub fn read(&mut self, id: PageId) -> Page {
        self.stats.reads += 1;
        self.pages[id.index()].clone()
    }

    /// Writes a page back (counted as one physical write).
    pub fn write(&mut self, id: PageId, page: &Page) {
        self.stats.writes += 1;
        self.pages[id.index()] = page.clone();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Zeroes the counters (page contents are retained).
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut s = PageStore::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_eq!(s.num_pages(), 2);
        assert_ne!(a, b);
        let mut p = s.read(a);
        p.bytes_mut()[0] = 7;
        s.write(a, &p);
        assert_eq!(s.read(a).bytes()[0], 7);
        assert_eq!(s.read(b).bytes()[0], 0);
        let st = s.stats();
        assert_eq!(st.allocations, 2);
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 3);
    }

    #[test]
    fn reset_stats_keeps_data() {
        let mut s = PageStore::new();
        let a = s.alloc();
        let mut p = s.read(a);
        p.bytes_mut()[9] = 1;
        s.write(a, &p);
        s.reset_stats();
        assert_eq!(s.stats(), StoreStats::default());
        assert_eq!(s.read(a).bytes()[9], 1);
    }
}
