//! The simulated disk: a growable array of pages with physical I/O
//! counters.

use crate::page::{Page, PageId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative physical I/O counters of a [`PageStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Pages read from the store.
    pub reads: u64,
    /// Pages written to the store.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
}

/// An in-memory "disk" of 4 KB pages.
///
/// Reads take `&self` (counters are atomic), so a concurrent buffer pool
/// can fault pages in under a shared lock; allocation and write-back still
/// need `&mut self` because they grow or mutate the page array.
#[derive(Default)]
pub struct PageStore {
    pages: Vec<Page>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
}

impl PageStore {
    /// An empty store.
    pub fn new() -> Self {
        PageStore::default()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes occupied on "disk".
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * crate::page::PAGE_SIZE
    }

    /// Allocates a fresh zeroed page.
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Page::zeroed());
        self.allocations.fetch_add(1, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        id
    }

    /// Reads a page (counted as one physical read).
    ///
    /// # Panics
    /// Panics on an unallocated page id — always a logic error here.
    pub fn read(&self, id: PageId) -> Page {
        self.reads.fetch_add(1, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        self.pages[id.index()].clone()
    }

    /// Writes a page back (counted as one physical write).
    pub fn write(&mut self, id: PageId, page: &Page) {
        self.writes.fetch_add(1, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        self.pages[id.index()] = page.clone();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            reads: self.reads.load(Ordering::Relaxed), // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
            writes: self.writes.load(Ordering::Relaxed), // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
            allocations: self.allocations.load(Ordering::Relaxed), // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        }
    }

    /// Zeroes the counters (page contents are retained).
    pub fn reset_stats(&mut self) {
        self.reads.store(0, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        self.writes.store(0, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
        self.allocations.store(0, Ordering::Relaxed); // roadlint: relaxed-ok reason="independent diagnostic counter; never ordered against page data"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut s = PageStore::new();
        let a = s.alloc();
        let b = s.alloc();
        assert_eq!(s.num_pages(), 2);
        assert_ne!(a, b);
        let mut p = s.read(a);
        p.bytes_mut()[0] = 7;
        s.write(a, &p);
        assert_eq!(s.read(a).bytes()[0], 7);
        assert_eq!(s.read(b).bytes()[0], 0);
        let st = s.stats();
        assert_eq!(st.allocations, 2);
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 3);
    }

    #[test]
    fn reset_stats_keeps_data() {
        let mut s = PageStore::new();
        let a = s.alloc();
        let mut p = s.read(a);
        p.bytes_mut()[9] = 1;
        s.write(a, &p);
        s.reset_stats();
        assert_eq!(s.stats(), StoreStats::default());
        assert_eq!(s.read(a).bytes()[9], 1);
    }
}
