//! The concurrent buffer pool: an LRU sharded into lock stripes.
//!
//! The single-threaded [`BufferPool`](crate::BufferPool) moves its LRU
//! list on every read, so sharing it between serving threads would mean a
//! global mutex — one cache-warm query serializing every other. This pool
//! shards the frame cache into `N` **stripes** keyed by page id
//! (`page % N`), each an independent LRU behind its own mutex: threads
//! touching different stripes never contend, and the paper's cost model is
//! preserved because every page access still goes through exactly one LRU
//! cache with bounded total capacity.
//!
//! ## Capacity split
//!
//! The requested capacity is distributed across stripes remainder-first
//! (`50` pages over `8` stripes = `7,7,6,6,6,6,6,6`), with a floor of one
//! frame per stripe. Two properties follow:
//!
//! * total capacity is exact whenever `capacity >= stripes` (the paper's
//!   50-page default splits exactly);
//! * every stripe's capacity is **monotone** in the requested capacity,
//!   so for pools with the **same stripe count** LRU's inclusion property
//!   holds per stripe and total page faults cannot increase when the
//!   buffer grows — the invariant `exp_disk` asserts (its sweeps pin one
//!   stripe count across all sizes; comparing pools with *different*
//!   stripe counts re-partitions the pages and voids the guarantee).
//!
//! Pools smaller than the stripe count are rounded up to one frame per
//! stripe ([`StripedBufferPool::capacity`] reports the effective size).
//!
//! ## Exact per-query accounting
//!
//! Global counters are atomics, but a concurrent query must not see other
//! threads' traffic in its own `SearchStats` delta. Every access therefore
//! also bumps a caller-owned [`IoTally`]; the tallies of all concurrent
//! queries sum exactly to the pool's cumulative [`BufferStats`] (a
//! property the core crate's paged tests pin down).
//!
//! ## Lock order and poisoning
//!
//! Lock order is `stripe -> store`, everywhere: the allocation path
//! releases the store lock before touching a stripe, and fault/write-back
//! paths take the store lock only while already holding a stripe. No path
//! holds two stripe locks at once. The `roadlint` pass extracts every
//! acquisition site in this file and checks the acquired-while-held graph
//! stays acyclic.
//!
//! A poisoned lock (a caller's closure panicked inside `with_page`)
//! surfaces as [`StorageError::LockPoisoned`] on every later access to
//! that stripe — the serving thread gets an `Err`, never a propagated
//! panic.
// roadlint: serving-path

use crate::buffer::{BufferStats, PagePool};
use crate::error::StorageError;
use crate::lru::LruCache;
use crate::page::{Page, PageId};
use crate::store::PageStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};

/// Default stripe count: enough to keep a handful of serving threads off
/// each other's locks without fragmenting small pools.
pub const DEFAULT_BUFFER_STRIPES: usize = 8;

/// Caller-owned I/O counters for one query (or one build phase): the
/// pool's per-access delta sink. Under concurrency these are the *only*
/// exact per-query numbers — diffing the global atomics would charge one
/// query with another's traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoTally {
    /// Page accesses through the pool.
    pub logical_reads: u64,
    /// Accesses that missed the cache and hit the store.
    pub page_faults: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
}

/// A thread-safe, lock-striped LRU buffer pool over a [`PageStore`].
///
/// All methods take `&self`; the pool is `Send + Sync` and is what lets
/// the core crate's `PagedEngine` serve `knn`/`range` from many threads at
/// once. See the [module docs](crate::striped) for the design.
pub struct StripedBufferPool {
    store: RwLock<PageStore>,
    stripes: Vec<Mutex<LruCache<u32, Frame>>>,
    capacity: usize,
    logical_reads: AtomicU64,
    page_faults: AtomicU64,
    write_backs: AtomicU64,
}

// The pool is shared by reference between serving threads; keep that a
// compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StripedBufferPool>();
};

impl StripedBufferPool {
    /// Wraps `store` with `capacity` frames sharded over `stripes` locks.
    ///
    /// # Panics
    /// Panics when `capacity` or `stripes` is zero.
    pub fn new(store: PageStore, capacity: usize, stripes: usize) -> Self {
        // roadlint: allow(panic) reason="construction-time configuration check, not a serving path"
        assert!(capacity > 0, "buffer-pool capacity must be positive");
        // roadlint: allow(panic) reason="construction-time configuration check, not a serving path"
        assert!(stripes > 0, "stripe count must be positive");
        let per_stripe =
            |i: usize| (capacity / stripes + usize::from(i < capacity % stripes)).max(1);
        let capacity = (0..stripes).map(per_stripe).sum();
        let stripes: Vec<Mutex<LruCache<u32, Frame>>> =
            (0..stripes).map(|i| Mutex::new(LruCache::new(per_stripe(i)))).collect();
        StripedBufferPool {
            store: RwLock::new(store),
            stripes,
            capacity,
            logical_reads: AtomicU64::new(0),
            page_faults: AtomicU64::new(0),
            write_backs: AtomicU64::new(0),
        }
    }

    /// Locks the stripe owning page `id`; `Err` if a previous holder
    /// panicked.
    #[inline]
    fn stripe(&self, id: PageId) -> Result<MutexGuard<'_, LruCache<u32, Frame>>, StorageError> {
        // roadlint: allow(panic) reason="index is id % stripes.len(), in range by construction"
        self.stripes[id.index() % self.stripes.len()]
            .lock()
            .map_err(|_| StorageError::LockPoisoned("buffer-pool stripe"))
    }

    /// Inserts a frame into `stripe`, writing back the evicted frame if it
    /// was dirty. Caller holds the stripe lock; the store lock is taken
    /// after (`stripe -> store` order).
    fn insert_frame(
        &self,
        stripe: &mut LruCache<u32, Frame>,
        id: u32,
        frame: Frame,
    ) -> Result<(), StorageError> {
        if let Some((evicted_id, evicted)) = stripe.put(id, frame) {
            if evicted.dirty {
                // roadlint: relaxed-ok reason="monotonic stats counter, read only by stats()"
                self.write_backs.fetch_add(1, Ordering::Relaxed);
                self.store
                    .write()
                    .map_err(|_| StorageError::LockPoisoned("page store"))?
                    .write(PageId(evicted_id), &evicted.page);
            }
        }
        Ok(())
    }

    /// Allocates a fresh zeroed page (cached clean).
    ///
    /// The store lock is released before the stripe lock is taken, so
    /// callers that need *consecutive* page ids (multi-page records) must
    /// serialize their own allocation runs.
    pub fn alloc(&self) -> Result<PageId, StorageError> {
        let id = self.store.write().map_err(|_| StorageError::LockPoisoned("page store"))?.alloc();
        let mut stripe = self.stripe(id)?;
        self.insert_frame(&mut stripe, id.0, Frame { page: Page::zeroed(), dirty: false })?;
        Ok(id)
    }

    /// Faults `id` into its (locked) stripe if absent.
    fn fault_in(
        &self,
        stripe: &mut LruCache<u32, Frame>,
        id: PageId,
        tally: &mut IoTally,
    ) -> Result<(), StorageError> {
        if !stripe.contains(&id.0) {
            // roadlint: relaxed-ok reason="monotonic stats counter; exactness is per-caller via IoTally"
            self.page_faults.fetch_add(1, Ordering::Relaxed);
            tally.page_faults += 1;
            let page =
                self.store.read().map_err(|_| StorageError::LockPoisoned("page store"))?.read(id);
            self.insert_frame(stripe, id.0, Frame { page, dirty: false })?;
        }
        Ok(())
    }

    /// Reads page `id` through the cache, charging `tally` (and the global
    /// counters) one logical read plus a fault if the page was not
    /// resident. `Err` when the stripe or store lock is poisoned.
    pub fn with_page<R>(
        &self,
        id: PageId,
        tally: &mut IoTally,
        f: impl FnOnce(&Page) -> R,
    ) -> Result<R, StorageError> {
        // roadlint: relaxed-ok reason="monotonic stats counter; exactness is per-caller via IoTally"
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        tally.logical_reads += 1;
        let mut stripe = self.stripe(id)?;
        self.fault_in(&mut stripe, id, tally)?;
        let frame =
            stripe.get(&id.0).ok_or(StorageError::Internal("frame evicted during fault-in"))?;
        Ok(f(&frame.page))
    }

    /// Mutates page `id` through the cache, marking it dirty; same
    /// accounting and error contract as [`StripedBufferPool::with_page`].
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        tally: &mut IoTally,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError> {
        // roadlint: relaxed-ok reason="monotonic stats counter; exactness is per-caller via IoTally"
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        tally.logical_reads += 1;
        let mut stripe = self.stripe(id)?;
        self.fault_in(&mut stripe, id, tally)?;
        let frame =
            stripe.get(&id.0).ok_or(StorageError::Internal("frame evicted during fault-in"))?;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Writes every dirty frame back to the store (frames stay cached and
    /// become clean, so a later eviction will not write them again).
    pub fn flush(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes {
            let mut stripe =
                stripe.lock().map_err(|_| StorageError::LockPoisoned("buffer-pool stripe"))?;
            let dirty: Vec<u32> =
                stripe.iter().filter(|(_, fr)| fr.dirty).map(|(id, _)| *id).collect();
            for id in dirty {
                let Some(frame) = stripe.get(&id) else { continue };
                frame.dirty = false;
                let page = frame.page.clone();
                // roadlint: relaxed-ok reason="monotonic stats counter, read only by stats()"
                self.write_backs.fetch_add(1, Ordering::Relaxed);
                self.store
                    .write()
                    .map_err(|_| StorageError::LockPoisoned("page store"))?
                    .write(PageId(id), &page);
            }
        }
        Ok(())
    }

    /// Flushes and empties every stripe — the paper initialises every
    /// measured query with an empty cache. Faults after a clear are
    /// counted once per access like any other cold read; the flush inside
    /// marks frames clean first, so nothing is written back twice.
    pub fn clear_cache(&self) -> Result<(), StorageError> {
        self.flush()?;
        for stripe in &self.stripes {
            stripe.lock().map_err(|_| StorageError::LockPoisoned("buffer-pool stripe"))?.clear();
        }
        Ok(())
    }

    /// Cumulative pool counters since the last reset. Under concurrency
    /// this is the sum of every caller's [`IoTally`] deltas (plus
    /// write-backs, which are pool-internal).
    pub fn stats(&self) -> BufferStats {
        BufferStats {
            // roadlint: relaxed-ok reason="independent monotonic counters; no cross-counter ordering is promised"
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            // roadlint: relaxed-ok reason="independent monotonic counters; no cross-counter ordering is promised"
            page_faults: self.page_faults.load(Ordering::Relaxed),
            // roadlint: relaxed-ok reason="independent monotonic counters; no cross-counter ordering is promised"
            write_backs: self.write_backs.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the pool counters (cache contents unchanged; callers'
    /// tallies are theirs to reset).
    pub fn reset_stats(&self) {
        // roadlint: relaxed-ok reason="stats reset races benignly with concurrent bumps"
        self.logical_reads.store(0, Ordering::Relaxed);
        // roadlint: relaxed-ok reason="stats reset races benignly with concurrent bumps"
        self.page_faults.store(0, Ordering::Relaxed);
        // roadlint: relaxed-ok reason="stats reset races benignly with concurrent bumps"
        self.write_backs.store(0, Ordering::Relaxed);
    }

    /// Effective capacity in frames (requested capacity rounded up to at
    /// least one frame per stripe).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Frames currently cached across all stripes.
    ///
    /// Introspection only: a poisoned stripe is *recovered* here (its LRU
    /// bookkeeping stays coherent — see the module docs) so diagnostics
    /// keep working even after a serving thread died.
    pub fn cached_pages(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).len()) // roadlint: lock(stripe)
            .sum()
    }

    /// Pages allocated in the backing store. Introspection: recovers a
    /// poisoned store lock like [`StripedBufferPool::cached_pages`].
    pub fn num_pages(&self) -> usize {
        self.store.read().unwrap_or_else(|poisoned| poisoned.into_inner()).num_pages()
    }

    /// Backing-store size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.store.read().unwrap_or_else(|poisoned| poisoned.into_inner()).size_bytes()
    }
}

/// One caller's view of a [`StripedBufferPool`]: a shared pool reference
/// plus that caller's private [`IoTally`]. Implements [`PagePool`], so a
/// [`crate::BPlusTree`] descent through the concurrent pool charges the
/// right query.
pub struct TalliedPool<'a> {
    /// The shared pool.
    pub pool: &'a StripedBufferPool,
    /// The caller's delta counters.
    pub tally: &'a mut IoTally,
}

impl PagePool for TalliedPool<'_> {
    fn alloc(&mut self) -> Result<PageId, StorageError> {
        self.pool.alloc()
    }

    fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R, StorageError> {
        self.pool.with_page(id, self.tally, f)
    }

    fn with_page_mut<R>(
        &mut self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, StorageError> {
        self.pool.with_page_mut(id, self.tally, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize, stripes: usize) -> StripedBufferPool {
        StripedBufferPool::new(PageStore::new(), capacity, stripes)
    }

    #[test]
    fn capacity_splits_exactly_when_large_enough() {
        let p = pool(50, 8);
        assert_eq!(p.capacity(), 50);
        assert_eq!(p.num_stripes(), 8);
        // Tiny pools round up to one frame per stripe.
        let tiny = pool(1, 8);
        assert_eq!(tiny.capacity(), 8);
    }

    #[test]
    fn reads_and_faults_roundtrip_across_stripes() {
        let p = pool(16, 4);
        let mut tally = IoTally::default();
        let ids: Vec<PageId> = (0..12).map(|_| p.alloc().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, &mut tally, |pg| pg.bytes_mut()[7] = i as u8).unwrap();
        }
        p.clear_cache().unwrap();
        p.reset_stats();
        let mut tally = IoTally::default();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, &mut tally, |pg| assert_eq!(pg.bytes()[7], i as u8)).unwrap();
        }
        assert_eq!(tally.page_faults, 12, "cold reads fault once each");
        // Warm repeat: reads grow, faults do not.
        for &id in &ids {
            p.with_page(id, &mut tally, |_| ()).unwrap();
        }
        assert_eq!(tally.logical_reads, 24);
        assert_eq!(tally.page_faults, 12);
        let st = p.stats();
        assert_eq!((st.logical_reads, st.page_faults), (24, 12));
    }

    /// Regression (stats drift): `clear_cache` flushes dirty frames as
    /// clean, so the flush write-back is the only one — evicting or
    /// re-clearing must not write the same page again, and faults after a
    /// clear are charged exactly once per access.
    #[test]
    fn clear_cache_does_not_double_count() {
        let p = pool(8, 2);
        let mut tally = IoTally::default();
        let a = p.alloc().unwrap();
        p.with_page_mut(a, &mut tally, |pg| pg.bytes_mut()[0] = 1).unwrap();
        p.clear_cache().unwrap();
        let after_first = p.stats().write_backs;
        assert_eq!(after_first, 1, "one dirty frame, one write-back");
        // Clearing again: the frame is gone, nothing to write.
        p.clear_cache().unwrap();
        assert_eq!(p.stats().write_backs, after_first);
        // Fault it back in twice: one fault, two reads.
        p.reset_stats();
        let mut tally = IoTally::default();
        p.with_page(a, &mut tally, |pg| assert_eq!(pg.bytes()[0], 1)).unwrap();
        p.with_page(a, &mut tally, |_| ()).unwrap();
        assert_eq!(tally, IoTally { logical_reads: 2, page_faults: 1 });
        // A clean frame evicted by pressure is not written back.
        for _ in 0..20 {
            p.alloc().unwrap();
        }
        assert_eq!(p.stats().write_backs, 0);
    }

    /// Regression (stats drift): hit rate is defined (`1.0`) before any
    /// access, and equals the usual ratio afterwards.
    #[test]
    fn hit_rate_defined_at_zero_reads() {
        let p = pool(4, 2);
        assert_eq!(p.stats().hit_rate(), 1.0);
        let a = p.alloc().unwrap();
        p.clear_cache().unwrap();
        let mut tally = IoTally::default();
        p.with_page(a, &mut tally, |_| ()).unwrap();
        p.with_page(a, &mut tally, |_| ()).unwrap();
        let rate = p.stats().hit_rate();
        assert!((rate - 0.5).abs() < 1e-12, "one fault in two reads, got {rate}");
    }

    /// The tentpole accounting property: per-caller tallies sum exactly to
    /// the pool's cumulative counters under concurrent access.
    #[test]
    fn tallies_sum_to_global_stats_under_threads() {
        let p = pool(6, 3); // small enough to keep evicting
        let ids: Vec<PageId> = (0..32).map(|_| p.alloc().unwrap()).collect();
        p.clear_cache().unwrap();
        p.reset_stats();
        let tallies: Vec<IoTally> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4u64)
                .map(|t| {
                    let p = &p;
                    let ids = &ids;
                    scope.spawn(move || {
                        let mut tally = IoTally::default();
                        for i in 0..400u64 {
                            let id = ids[((i * 7 + t * 13) % ids.len() as u64) as usize];
                            p.with_page(id, &mut tally, |pg| {
                                assert_eq!(pg.bytes()[0], 0);
                            })
                            .unwrap();
                        }
                        tally
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        let reads: u64 = tallies.iter().map(|t| t.logical_reads).sum();
        let faults: u64 = tallies.iter().map(|t| t.page_faults).sum();
        let st = p.stats();
        assert_eq!(reads, st.logical_reads);
        assert_eq!(faults, st.page_faults);
        assert_eq!(reads, 4 * 400);
        assert!(faults >= 32, "a 6-frame pool over 32 pages must fault");
    }

    /// Dirty pages written concurrently survive eviction and clear.
    #[test]
    fn concurrent_writes_are_not_lost() {
        let p = pool(4, 2);
        let ids: Vec<PageId> = (0..16).map(|_| p.alloc().unwrap()).collect();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let p = &p;
                let ids = &ids;
                scope.spawn(move || {
                    let mut tally = IoTally::default();
                    // Each thread owns a disjoint quarter of the pages.
                    for (i, &id) in ids.iter().enumerate().skip(t * 4).take(4) {
                        p.with_page_mut(id, &mut tally, |pg| pg.bytes_mut()[100] = i as u8 + 1)
                            .unwrap();
                    }
                });
            }
        });
        p.clear_cache().unwrap();
        let mut tally = IoTally::default();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page(id, &mut tally, |pg| {
                assert_eq!(pg.bytes()[100], i as u8 + 1, "page {i} lost its write");
            })
            .unwrap();
        }
    }

    #[test]
    fn capacity_bound_is_respected() {
        let p = pool(5, 4); // caps 2,1,1,1
        assert_eq!(p.capacity(), 5);
        let mut tally = IoTally::default();
        let ids: Vec<PageId> = (0..64).map(|_| p.alloc().unwrap()).collect();
        for &id in &ids {
            p.with_page(id, &mut tally, |_| ()).unwrap();
        }
        assert!(p.cached_pages() <= p.capacity());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = pool(0, 4);
    }

    /// The panic-freedom satellite: a closure that panics inside
    /// `with_page` poisons that stripe, and every later access to the
    /// stripe surfaces `Err(LockPoisoned)` — never a propagated panic.
    #[test]
    fn poisoned_stripe_surfaces_as_err_not_panic() {
        let p = pool(8, 2);
        let mut tally = IoTally::default();
        let a = p.alloc().unwrap();
        let sibling = {
            // A page in the same stripe as `a` (same id parity).
            let mut id = p.alloc().unwrap();
            while id.index() % 2 != a.index() % 2 {
                id = p.alloc().unwrap();
            }
            id
        };
        let other = {
            // A page in the other stripe.
            let mut id = p.alloc().unwrap();
            while id.index() % 2 == a.index() % 2 {
                id = p.alloc().unwrap();
            }
            id
        };
        // Poison `a`'s stripe: panic while holding its lock.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t = IoTally::default();
            let _ = p.with_page(a, &mut t, |_| panic!("die holding the stripe lock"));
        }));
        assert!(panicked.is_err(), "closure panic must unwind out of with_page");
        // Same stripe: every access reports Err.
        assert_eq!(
            p.with_page(a, &mut tally, |_| ()),
            Err(StorageError::LockPoisoned("buffer-pool stripe"))
        );
        assert_eq!(
            p.with_page_mut(sibling, &mut tally, |_| ()),
            Err(StorageError::LockPoisoned("buffer-pool stripe"))
        );
        assert!(p.flush().is_err(), "flush walks every stripe");
        // The untouched stripe still serves.
        assert!(p.with_page(other, &mut tally, |_| ()).is_ok());
        // Introspection recovers instead of failing.
        let _ = p.cached_pages();
        assert!(p.num_pages() >= 3);
    }

    /// B+-tree over the concurrent pool via `TalliedPool`: shared reads
    /// from several threads agree with the single-threaded answer.
    #[test]
    fn bptree_reads_through_tallied_pool() {
        use crate::bptree::BPlusTree;
        let p = pool(8, 4);
        let mut tally = IoTally::default();
        let mut tree =
            BPlusTree::with_caps(&mut TalliedPool { pool: &p, tally: &mut tally }, 4, 4).unwrap();
        for k in 0..300u64 {
            tree.insert(&mut TalliedPool { pool: &p, tally: &mut tally }, k, k * 3).unwrap();
        }
        p.clear_cache().unwrap();
        p.reset_stats();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let p = &p;
                let tree = &tree;
                scope.spawn(move || {
                    let mut tally = IoTally::default();
                    for i in 0..300u64 {
                        let k = (i * 11 + t) % 300;
                        let got = tree
                            .get(&mut TalliedPool { pool: p, tally: &mut tally }, k)
                            .unwrap()
                            .expect("key present");
                        assert_eq!(got, k * 3);
                    }
                    assert!(tally.logical_reads > 0);
                });
            }
        });
    }
}
