//! Multi-category POI search over a street network, showing the clean
//! network/object separation: several Association Directories — one per
//! content provider — share a single Route Overlay, and each query prunes
//! using its own directory's object abstracts.
//!
//! ```text
//! cargo run --release --example city_poi_search
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_network::generator::Dataset;
use road_network::EdgeId;

const RESTAURANT: CategoryId = CategoryId(0);
const SEAFOOD: CategoryId = CategoryId(1); // a sub-cuisine, own category
const PHARMACY: CategoryId = CategoryId(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Dataset::SfStreets.generate_scaled(0.03, 2026)?;
    let road = RoadFramework::builder(network).fanout(4).levels(5).build()?;
    println!(
        "street network: {} nodes / {} edges, overlay: {} shortcuts over {} Rnets",
        road.network().num_nodes(),
        road.network().num_edges(),
        road.shortcuts().num_shortcuts(),
        road.hierarchy().num_rnets()
    );

    // Two independent content providers map their POIs onto the same
    // overlay (the framework never needs rebuilding for this).
    let mut rng = StdRng::seed_from_u64(5);
    let edges = road.network().edge_slots() as u32;
    let mut dining = AssociationDirectory::new(road.hierarchy());
    for i in 0..120u64 {
        let cat = if i % 6 == 0 { SEAFOOD } else { RESTAURANT };
        dining.insert(
            road.network(),
            road.hierarchy(),
            Object::new(
                ObjectId(i),
                EdgeId(rng.random_range(0..edges)),
                rng.random_range(0.0..=1.0),
                cat,
            ),
        )?;
    }
    let mut health = AssociationDirectory::new(road.hierarchy());
    for i in 0..15u64 {
        health.insert(
            road.network(),
            road.hierarchy(),
            Object::new(
                ObjectId(i),
                EdgeId(rng.random_range(0..edges)),
                rng.random_range(0.0..=1.0),
                PHARMACY,
            ),
        )?;
    }

    let here = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    println!("\nsearching from intersection {here}");

    // "restaurant o.type = 'seafood'" — the paper's example predicate.
    let seafood =
        road.knn(&dining, &KnnQuery::new(here, 3).with_filter(ObjectFilter::Category(SEAFOOD)))?;
    println!("\n3 nearest seafood restaurants:");
    for hit in &seafood.hits {
        println!("  {:?} at {:.2}", hit.object, hit.distance.get());
    }
    println!(
        "  pruning: {} Rnets bypassed vs {} descended ({} nodes settled)",
        seafood.stats.rnets_bypassed, seafood.stats.rnets_descended, seafood.stats.nodes_settled
    );

    // Any restaurant at all: denser objects => less pruning, still exact.
    let any = road.knn(&dining, &KnnQuery::new(here, 3))?;
    println!(
        "\n3 nearest restaurants of any kind: {:?} (settled {} nodes)",
        any.hits.iter().map(|h| h.object).collect::<Vec<_>>(),
        any.stats.nodes_settled
    );

    // The sparse pharmacy directory prunes hardest.
    let pharmacy = road.knn(&health, &KnnQuery::new(here, 1))?;
    if let Some(hit) = pharmacy.hits.first() {
        println!(
            "\nnearest pharmacy: {:?} at {:.2} ({} Rnets bypassed)",
            hit.object,
            hit.distance.get(),
            pharmacy.stats.rnets_bypassed
        );
    }

    // Point-to-point routing over the same overlay, for free.
    let there = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    if let Some(d) = road.network_distance(here, there)? {
        println!("\nnetwork distance {here} -> {there}: {:.2}", d.get());
    }
    Ok(())
}
