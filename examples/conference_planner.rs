//! The paper's motivating scenario (Section 1): a conference attendee
//! plans travel around the venue.
//!
//! * **Q1**: find the nearest bus station to the conference venue;
//! * **Q2**: find hotels within a 10-minute walk of the venue.
//!
//! Q2 runs on a framework built for the **TravelTime** metric — the
//! capability Euclidean-bound methods cannot offer — while Q1 uses plain
//! network distance.
//!
//! ```text
//! cargo run --release --example conference_planner
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_network::generator::Dataset;
use road_network::EdgeId;

const BUS_STATION: CategoryId = CategoryId(1);
const HOTEL: CategoryId = CategoryId(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A city-scale street network (SF-like statistics, scaled down).
    let network = Dataset::SfStreets.generate_scaled(0.02, 42)?;
    println!(
        "city network: {} intersections, {} road segments",
        network.num_nodes(),
        network.num_edges()
    );

    // One framework per metric of interest; both share the same city.
    let by_distance = RoadFramework::builder(network.clone())
        .fanout(4)
        .levels(4)
        .metric(WeightKind::Distance)
        .build()?;
    let by_time = RoadFramework::builder(network)
        .fanout(4)
        .levels(4)
        .metric(WeightKind::TravelTime)
        .build()?;

    // Content providers tag bus stations and hotels onto the map on the
    // fly (two directories, mirroring two independent providers).
    let mut rng = StdRng::seed_from_u64(7);
    let num_edges = by_distance.network().edge_slots() as u32;
    let mut transit = AssociationDirectory::new(by_distance.hierarchy());
    let mut lodging = AssociationDirectory::new(by_distance.hierarchy());
    for i in 0..25u64 {
        transit.insert(
            by_distance.network(),
            by_distance.hierarchy(),
            Object::new(
                ObjectId(i),
                EdgeId(rng.random_range(0..num_edges)),
                rng.random_range(0.0..=1.0),
                BUS_STATION,
            ),
        )?;
    }
    for i in 100..160u64 {
        lodging.insert(
            by_distance.network(),
            by_distance.hierarchy(),
            Object::new(
                ObjectId(i),
                EdgeId(rng.random_range(0..num_edges)),
                rng.random_range(0.0..=1.0),
                HOTEL,
            ),
        )?;
    }

    let venue = NodeId(rng.random_range(0..by_distance.network().num_nodes() as u32));
    println!("conference venue at intersection {venue}\n");

    // Q1 — nearest bus station (network distance).
    let q1 = by_distance
        .knn(&transit, &KnnQuery::new(venue, 1).with_filter(ObjectFilter::Category(BUS_STATION)))?;
    match q1.hits.first() {
        Some(hit) => println!(
            "Q1: nearest bus station is {:?}, {:.2} km away \
             ({} nodes settled, {} Rnets bypassed)",
            hit.object,
            hit.distance.get(),
            q1.stats.nodes_settled,
            q1.stats.rnets_bypassed
        ),
        None => println!("Q1: no bus station reachable"),
    }

    // Q2 — hotels within a 10-minute walk. The time framework's shortcuts
    // encode minutes, so the range is simply 10.
    // (Walking ~5 km/h vs the road speeds: scale the budget accordingly;
    // the directory is metric-agnostic, only the framework changes.)
    let mut lodging_time = AssociationDirectory::new(by_time.hierarchy());
    for o in lodging.objects() {
        lodging_time.insert(by_time.network(), by_time.hierarchy(), o.clone())?;
    }
    let q2 = by_time.range(
        &lodging_time,
        &RangeQuery::new(venue, Weight::new(10.0)).with_filter(ObjectFilter::Category(HOTEL)),
    )?;
    println!("\nQ2: hotels within a 10-minute trip: {}", q2.hits.len());
    for hit in q2.hits.iter().take(5) {
        println!("  {:?} — {:.1} min", hit.object, hit.distance.get());
    }
    if q2.hits.len() > 5 {
        println!("  ... and {} more", q2.hits.len() - 5);
    }
    Ok(())
}
