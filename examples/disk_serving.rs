//! Disk-resident serving: build the overlay once, ship it as a
//! `ROADFW01` image, and serve kNN straight from 4 KB pages through an
//! LRU buffer pool — the paper's actual cost model, where queries are
//! charged in page accesses, not CPU time.
//!
//! The walk-through: build + persist, open the image *page-granularly*
//! (no monolithic deserialize — Rnet shortcut sections page in on first
//! touch), serve a burst of queries under a small memory budget,
//! cross-check every answer against the in-memory engine, fan the same
//! replica out across **four serving threads** (queries take `&self`;
//! the lock-striped buffer pool needs no wrapper mutex), and watch the
//! buffer-pool economics change as the pool grows.
//!
//! ```text
//! cargo run --release --example disk_serving
//! ```

use road_core::paged::{PagedEngine, PagedOptions};
use road_core::prelude::*;
use road_network::generator::simple;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build once: a 24x24 street grid with 100 m blocks, fanout-4
    //    hierarchy, and a directory of fuel stations.
    let network = simple::grid(24, 24, 100.0);
    let road = RoadFramework::builder(network).fanout(4).levels(3).build()?;
    const FUEL: CategoryId = CategoryId(7);
    let mut stations = AssociationDirectory::new(road.hierarchy());
    let edges: Vec<_> = road.network().edge_ids().collect();
    for i in 0..18u64 {
        let e = edges[(i as usize * 61) % edges.len()];
        stations.insert(
            road.network(),
            road.hierarchy(),
            Object::new(ObjectId(i), e, 0.5, FUEL),
        )?;
    }
    println!(
        "built overlay: {} nodes, {} shortcuts, {} stations",
        road.network().num_nodes(),
        road.shortcuts().num_shortcuts(),
        stations.len()
    );

    // 2. Ship it: the persisted image is the deployment artifact.
    let image_bytes = road.to_bytes();
    println!("persisted image: {} KB", image_bytes.len() / 1024);

    // 3. A serving replica opens the image page-granularly: the network
    //    and hierarchy load eagerly, but no Rnet's shortcuts are decoded
    //    until a query first crosses that Rnet.
    let image = PagedImage::open(image_bytes)?;
    let objects: Vec<Object> = stations.objects().cloned().collect();
    let replica = PagedEngine::open(image, objects, PagedOptions::with_buffer_pages(25))?;
    println!(
        "replica opened lazily: {}/{} Rnet sections resident, {} disk pages",
        replica.rnets_loaded(),
        replica.hierarchy().num_rnets(),
        replica.num_disk_pages()
    );

    // 4. Serve a query burst from pages, oracle-checking each answer
    //    against the in-memory engine.
    let oracle = QueryEngine::new(road.clone(), stations);
    let mut first_burst_faults = 0usize;
    for i in 0..40u32 {
        let q = KnnQuery::new(NodeId((i * 14) % 576), 3).with_filter(ObjectFilter::Category(FUEL));
        let paged = replica.knn(&q)?;
        let mem = oracle.knn(&q)?;
        assert_eq!(paged.hits, mem.hits, "paged serving must match the in-memory engine");
        first_burst_faults += paged.stats.page_faults;
    }
    println!(
        "first burst: 40 queries oracle-checked, {} page faults, {}/{} Rnet sections paged in",
        first_burst_faults,
        replica.rnets_loaded(),
        replica.hierarchy().num_rnets()
    );

    // 5. The same burst again: the working set is resident now.
    let mut warm = 0usize;
    let mut accesses = 0usize;
    for i in 0..40u32 {
        let q = KnnQuery::new(NodeId((i * 14) % 576), 3).with_filter(ObjectFilter::Category(FUEL));
        let res = replica.knn(&q)?;
        warm += res.stats.page_faults;
        accesses += res.stats.pages_read;
    }
    println!("warm burst: {accesses} page accesses, {warm} faults");

    // 6. Concurrent serving: queries take `&self`, so four threads share
    //    the replica directly — no Mutex wrapper — each oracle-checking
    //    its own slice of the burst. Per-thread SearchStats stay exact
    //    (each query's page counters come from its private tally).
    let served: usize = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4u32)
            .map(|t| {
                let replica = &replica;
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut ws = SearchWorkspace::new();
                    let mut hits = Vec::new();
                    let mut served = 0usize;
                    for i in 0..40u32 {
                        if i % 4 != t {
                            continue;
                        }
                        let q = KnnQuery::new(NodeId((i * 14) % 576), 3)
                            .with_filter(ObjectFilter::Category(FUEL));
                        replica.knn_with(&q, &mut ws, &mut hits).expect("valid query");
                        let mem = oracle.knn(&q).expect("valid query");
                        assert_eq!(hits, mem.hits, "concurrent paged serving must stay exact");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("serving thread panicked")).sum()
    });
    println!(
        "concurrent burst: {served} queries from 4 threads on one shared replica, all \
         oracle-checked ({} buffer stripes)",
        replica.buffer_stripes()
    );

    // 7. Memory-constrained serving: the same workload under shrinking
    //    buffer budgets (eager layout so each run is self-contained).
    println!("\nbuffer sweep (same 40-query burst, eager layout):");
    let stations2 = {
        let mut ad = AssociationDirectory::new(road.hierarchy());
        for o in oracle.directory().objects() {
            ad.insert(road.network(), road.hierarchy(), o.clone())?;
        }
        ad
    };
    for pages in [5usize, 25, 100] {
        let engine = PagedEngine::new(&road, &stations2, PagedOptions::with_buffer_pages(pages))?;
        let mut faults = 0usize;
        let mut reads = 0usize;
        for i in 0..40u32 {
            let q =
                KnnQuery::new(NodeId((i * 14) % 576), 3).with_filter(ObjectFilter::Category(FUEL));
            let res = engine.knn(&q)?;
            faults += res.stats.page_faults;
            reads += res.stats.pages_read;
        }
        println!(
            "  {pages:>4} pages ({:>3} KB buffer): {faults:>4} faults / {reads} accesses \
             (hit rate {:.1}%)",
            pages * 4,
            100.0 * (1.0 - faults as f64 / reads as f64)
        );
    }

    Ok(())
}
