//! Group meet-up planning with aggregate kNN, plus framework persistence:
//! build the overlay once, save it, and reload it orders of magnitude
//! faster than rebuilding.
//!
//! ```text
//! cargo run --release --example group_meetup
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_core::search::{Aggregate, AggregateKnnQuery};
use road_network::generator::Dataset;
use road_network::EdgeId;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Dataset::SfStreets.generate_scaled(0.025, 7)?;

    let t = Instant::now();
    let road = RoadFramework::builder(network).fanout(4).levels(4).build()?;
    let build_time = t.elapsed();
    println!(
        "built overlay for {} nodes / {} edges in {:.0} ms",
        road.network().num_nodes(),
        road.network().num_edges(),
        build_time.as_secs_f64() * 1e3
    );

    // Cafes scattered around town.
    let mut rng = StdRng::seed_from_u64(3);
    let edges = road.network().edge_slots() as u32;
    let mut cafes = AssociationDirectory::new(road.hierarchy());
    for i in 0..60u64 {
        cafes.insert(
            road.network(),
            road.hierarchy(),
            Object::new(
                ObjectId(i),
                EdgeId(rng.random_range(0..edges)),
                rng.random_range(0.0..=1.0),
                CategoryId(0),
            ),
        )?;
    }

    // Three friends in different corners of the city.
    let friends: Vec<NodeId> =
        (0..3).map(|_| NodeId(rng.random_range(0..road.network().num_nodes() as u32))).collect();
    println!("\nfriends at {friends:?}");

    // Where should they meet to minimise total travel?
    let fair = road.aggregate_knn(
        &cafes,
        &AggregateKnnQuery::new(friends.clone(), 3).with_aggregate(Aggregate::Sum),
    )?;
    println!("\nbest meeting cafes by TOTAL distance:");
    for hit in &fair {
        println!("  {:?} — combined {:.2}", hit.object, hit.distance.get());
    }

    // Or to be fair to the farthest friend?
    let minimax = road.aggregate_knn(
        &cafes,
        &AggregateKnnQuery::new(friends.clone(), 3).with_aggregate(Aggregate::Max),
    )?;
    println!("\nbest meeting cafes by WORST-CASE distance:");
    for hit in &minimax {
        println!("  {:?} — farthest friend travels {:.2}", hit.object, hit.distance.get());
    }

    // Ship the overlay: serialize, reload, compare cost.
    let bytes = road.to_bytes();
    let t = Instant::now();
    let reloaded = RoadFramework::from_bytes(&bytes)?;
    let load_time = t.elapsed();
    println!(
        "\npersistence: {} KB on disk; reload {:.0} ms vs {:.0} ms build ({:.0}x faster)",
        bytes.len() / 1024,
        load_time.as_secs_f64() * 1e3,
        build_time.as_secs_f64() * 1e3,
        build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
    );
    // The reloaded overlay answers identically.
    let again = reloaded.aggregate_knn(
        &cafes,
        &AggregateKnnQuery::new(friends, 3).with_aggregate(Aggregate::Sum),
    )?;
    assert_eq!(again.len(), fair.len());
    for (a, b) in again.iter().zip(&fair) {
        assert_eq!(a.object, b.object);
    }
    println!("reloaded overlay verified: identical answers");
    Ok(())
}
