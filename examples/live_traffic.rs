//! Live-traffic maintenance (Section 5.2): edge weights change as
//! congestion builds, roads close and reopen, and a new road is built —
//! while nearest-neighbour answers stay exact throughout. The framework
//! repairs only the affected shortcut chains (filter-and-refresh), never
//! rebuilding from scratch.
//!
//! ```text
//! cargo run --release --example live_traffic
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_network::generator::Dataset;
use road_network::EdgeId;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Dataset::CaHighways.generate_scaled(0.2, 99)?;
    let mut road = RoadFramework::builder(network)
        .fanout(4)
        .levels(4)
        .metric(WeightKind::TravelTime)
        .build()?;
    println!(
        "highway network: {} nodes / {} edges ({} shortcuts)",
        road.network().num_nodes(),
        road.network().num_edges(),
        road.shortcuts().num_shortcuts()
    );

    let mut rng = StdRng::seed_from_u64(17);
    let edges = road.network().edge_slots() as u32;
    let mut stations = AssociationDirectory::new(road.hierarchy());
    for i in 0..30u64 {
        stations.insert(
            road.network(),
            road.hierarchy(),
            Object::new(ObjectId(i), EdgeId(rng.random_range(0..edges)), 0.5, CategoryId(0)),
        )?;
    }

    let me = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    let before = road.knn(&stations, &KnnQuery::new(me, 1))?;
    let first = before.hits[0];
    println!(
        "\nnearest service station from {me}: {:?}, {:.1} min away",
        first.object,
        first.distance.get()
    );

    // Rush hour: congest the edges along the current best route.
    let (path, _, _) = before.path_to_hit(&road, &stations, &first).expect("path");
    println!("congesting the {} segments of that route (4x travel time)...", path.edges().len());
    let mut refreshed = 0;
    let t = Instant::now();
    for &e in path.edges() {
        let w = road.network().weight(e, WeightKind::TravelTime);
        let outcome = road.set_edge_weight(e, Weight::new(w.get() * 4.0))?;
        refreshed += outcome.rnets_refreshed;
    }
    println!(
        "  repaired {} Rnet shortcut sets in {:.1} ms",
        refreshed,
        t.elapsed().as_secs_f64() * 1e3
    );

    let after = road.knn(&stations, &KnnQuery::new(me, 1))?;
    let second = after.hits[0];
    println!(
        "nearest station now: {:?}, {:.1} min ({}!)",
        second.object,
        second.distance.get(),
        if second.object != first.object {
            "a different station wins"
        } else {
            "same station, longer trip"
        }
    );

    // A full road closure (weight -> infinity), then reopening. Closing a
    // mid-route segment keeps `me`'s own ramp open; on a highway network a
    // closure can still sever whole spurs, so an empty answer is legitimate.
    // The route can also be edgeless (station on an edge at `me` itself),
    // in which case there is nothing to close.
    if let Some(&closed) = path.edges().get(path.edges().len() / 2) {
        let original = road.network().weight(closed, WeightKind::TravelTime);
        road.set_edge_weight(closed, Weight::INFINITY)?;
        let detour = road.knn(&stations, &KnnQuery::new(me, 1))?;
        match detour.hits.first() {
            Some(hit) => println!(
                "\nwith segment {closed} closed: nearest is {:?} at {:.1} min",
                hit.object,
                hit.distance.get()
            ),
            None => println!(
                "\nwith segment {closed} closed, no station is reachable: the closure cut {me} off"
            ),
        }
        road.set_edge_weight(closed, original)?;
    }

    // Road construction: a new bypass between two random intersections.
    let a = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    let b = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    if a != b && road.network().edge_between(a, b).is_none() {
        let t = Instant::now();
        let w = Weight::new(1.0); // a one-minute connector
        let (e, outcome) = road.add_edge(a, b, (w, w, Weight::ZERO))?;
        println!(
            "\nbuilt new road {e} between {a} and {b}: {} Rnets refreshed, {} border promotions, {:.1} ms",
            outcome.rnets_refreshed,
            outcome.borders_promoted,
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    // Answers remain exact after all of it (cross-checked in the tests via
    // the brute-force oracle; here we just show the query still runs).
    let fin = road.knn(&stations, &KnnQuery::new(me, 3))?;
    println!("\nfinal 3NN from {me}:");
    for hit in &fin.hits {
        println!("  {:?} — {:.1} min", hit.object, hit.distance.get());
    }
    Ok(())
}
