//! Live-traffic serving (Section 5.2 behind `road_core::live`): edge
//! weights change as congestion builds, roads close and reopen, and a new
//! road is built — while reader threads keep answering exact
//! nearest-neighbour queries on atomically published snapshots. The
//! writer repairs only the affected shortcut chains (filter-and-refresh)
//! and publishes batches; readers holding an old snapshot keep a
//! consistent pre-update view until they re-acquire.
//!
//! ```text
//! cargo run --release --example live_traffic
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_core::prelude::*;
use road_network::generator::Dataset;
use road_network::EdgeId;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = Dataset::CaHighways.generate_scaled(0.2, 99)?;
    let road = RoadFramework::builder(network)
        .fanout(4)
        .levels(4)
        .metric(WeightKind::TravelTime)
        .build()?;
    println!(
        "highway network: {} nodes / {} edges ({} shortcuts)",
        road.network().num_nodes(),
        road.network().num_edges(),
        road.shortcuts().num_shortcuts()
    );

    let mut rng = StdRng::seed_from_u64(17);
    let edges = road.network().edge_slots() as u32;
    let mut stations = AssociationDirectory::new(road.hierarchy());
    for i in 0..30u64 {
        stations.insert(
            road.network(),
            road.hierarchy(),
            Object::new(ObjectId(i), EdgeId(rng.random_range(0..edges)), 0.5, CategoryId(0)),
        )?;
    }
    let num_nodes = road.network().num_nodes() as u32;

    // The deployment: one shareable reader handle, one unique writer.
    let (live, mut traffic) = LiveEngine::new(road, stations);

    let me = NodeId(rng.random_range(0..num_nodes));
    let morning = live.snapshot(); // what a reader thread holds right now
    let before = morning.knn(&KnnQuery::new(me, 1))?;
    let first = before.hits[0];
    println!(
        "\nnearest service station from {me}: {:?}, {:.1} min away",
        first.object,
        first.distance.get()
    );

    // Rush hour: congest the edges along the current best route (or the
    // station's own edge when it sits right at `me` and the route is
    // edgeless), then publish the whole batch as one coherent snapshot.
    let (path, _, _) =
        before.path_to_hit(morning.framework(), morning.directory(), &first).expect("path");
    let station_edge = morning.directory().object(first.object).expect("hit exists").edge;
    let congested: Vec<EdgeId> =
        if path.edges().is_empty() { vec![station_edge] } else { path.edges().to_vec() };
    println!("congesting the {} segments of that route (4x travel time)...", congested.len());
    let t = Instant::now();
    let mut refreshed = 0;
    for &e in &congested {
        let w = traffic.framework().network().weight(e, WeightKind::TravelTime);
        let outcome = traffic.set_edge_weight(e, Weight::new(w.get() * 4.0))?;
        refreshed += outcome.rnets_refreshed;
    }
    let version = traffic.publish();
    println!(
        "  repaired {} Rnet shortcut sets and published snapshot v{} in {:.1} ms",
        refreshed,
        version,
        t.elapsed().as_secs_f64() * 1e3
    );

    // A reader still holding the morning snapshot sees the old answer; a
    // reader that re-acquires sees the congestion.
    let held = morning.knn(&KnnQuery::new(me, 1))?;
    let rush = live.snapshot();
    let after = rush.knn(&KnnQuery::new(me, 1))?;
    let second = after.hits[0];
    println!(
        "reader on held snapshot v{}: {:?} at {:.1} min (pre-congestion view)",
        morning.version(),
        held.hits[0].object,
        held.hits[0].distance.get()
    );
    println!(
        "reader on fresh snapshot v{}: {:?} at {:.1} min ({})",
        rush.version(),
        second.object,
        second.distance.get(),
        if second.object != first.object {
            "a different station wins"
        } else {
            "same station, longer trip"
        }
    );

    // A full road closure (weight -> infinity), then reopening. Closing a
    // mid-route segment keeps `me`'s own ramp open; on a highway network a
    // closure can still sever whole spurs, so an empty answer is
    // legitimate. The route can also be edgeless (station on an edge at
    // `me` itself), in which case there is nothing to close.
    if let Some(&closed) = path.edges().get(path.edges().len() / 2) {
        let original = traffic.framework().network().weight(closed, WeightKind::TravelTime);
        traffic.set_edge_weight(closed, Weight::INFINITY)?;
        traffic.publish();
        let detour = live.snapshot().knn(&KnnQuery::new(me, 1))?;
        match detour.hits.first() {
            Some(hit) => println!(
                "\nwith segment {closed} closed: nearest is {:?} at {:.1} min",
                hit.object,
                hit.distance.get()
            ),
            None => println!(
                "\nwith segment {closed} closed, no station is reachable: the closure cut {me} off"
            ),
        }
        traffic.set_edge_weight(closed, original)?;
        traffic.publish();
    }

    // Road construction: a new bypass between two random intersections.
    let a = NodeId(rng.random_range(0..num_nodes));
    let b = NodeId(rng.random_range(0..num_nodes));
    if a != b && traffic.framework().network().edge_between(a, b).is_none() {
        let t = Instant::now();
        let w = Weight::new(1.0); // a one-minute connector
        let (e, outcome) = traffic.add_edge(a, b, (w, w, Weight::ZERO))?;
        traffic.publish();
        println!(
            "\nbuilt new road {e} between {a} and {b}: {} Rnets refreshed, {} border promotions, {:.1} ms",
            outcome.rnets_refreshed,
            outcome.borders_promoted,
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    // Answers remain exact after all of it (cross-checked in the tests via
    // the brute-force oracle; here we just show the query still runs), and
    // the cumulative stats show every repair stayed local.
    let fin = live.snapshot().knn(&KnnQuery::new(me, 3))?;
    println!("\nfinal 3NN from {me} (snapshot v{}):", live.version());
    for hit in &fin.hits {
        println!("  {:?} — {:.1} min", hit.object, hit.distance.get());
    }
    let stats = traffic.stats();
    println!(
        "\nwriter lifetime: {} updates over {} publishes, {} Rnet refreshes total ({} Rnets exist)",
        stats.updates,
        stats.publishes,
        stats.outcome.rnets_refreshed,
        live.snapshot().framework().hierarchy().num_rnets()
    );
    Ok(())
}
