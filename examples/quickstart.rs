//! Quickstart: build a ROAD framework over a small street grid, map a few
//! objects, and run the two LDSQs of the paper — kNN and range search.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use road_core::prelude::*;
use road_network::generator::simple;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A road network: 20x20 street grid, 100 m blocks.
    let network = simple::grid(20, 20, 100.0);
    println!("network: {} nodes, {} edges", network.num_nodes(), network.num_edges());

    // 2. The ROAD framework: Rnet hierarchy (fanout 4, 3 levels) with
    //    shortcuts and a Route Overlay, built for the Distance metric.
    let road = RoadFramework::builder(network).fanout(4).levels(3).build()?;
    println!(
        "overlay: {} Rnets, {} shortcuts",
        road.hierarchy().num_rnets(),
        road.shortcuts().num_shortcuts()
    );

    // 3. An Association Directory: cafes mapped onto edges. The directory
    //    is separate from the overlay — that's the framework's core design.
    const CAFE: CategoryId = CategoryId(0);
    const FUEL: CategoryId = CategoryId(1);
    let mut pois = AssociationDirectory::new(road.hierarchy());
    for (i, edge_no) in [3u32, 210, 411, 590, 707].iter().enumerate() {
        pois.insert(
            road.network(),
            road.hierarchy(),
            Object::new(ObjectId(i as u64), road_network::EdgeId(*edge_no), 0.4, CAFE),
        )?;
    }
    pois.insert(
        road.network(),
        road.hierarchy(),
        Object::new(ObjectId(99), road_network::EdgeId(333), 0.5, FUEL),
    )?;

    // 4. Q: the 2 nearest cafes from the grid centre.
    let here = NodeId(210);
    let knn = road.knn(&pois, &KnnQuery::new(here, 2).with_filter(ObjectFilter::Category(CAFE)))?;
    println!("\n2 nearest cafes from {here}:");
    for hit in &knn.hits {
        println!("  {:?} at network distance {:.0} m", hit.object, hit.distance.get());
    }
    println!(
        "  (settled {} nodes, bypassed {} Rnets, took {} shortcuts)",
        knn.stats.nodes_settled, knn.stats.rnets_bypassed, knn.stats.shortcuts_taken
    );

    // 5. Q: everything within 500 m.
    let range = road.range(&pois, &RangeQuery::new(here, Weight::new(500.0)))?;
    println!("\nobjects within 500 m: {}", range.hits.len());

    // 6. Full driving directions to the best hit — extracted straight from
    // the kNN result above, no fresh query needed.
    if let Some((path, edge, offset)) =
        knn.hits.first().and_then(|h| knn.path_to_hit(&road, &pois, h))
    {
        println!(
            "\nroute to {:?}: {} hops, {:.0} m, then {:.0} m along edge {edge}",
            knn.hits[0].object,
            path.len(),
            path.total().get(),
            offset.get()
        );
    }
    Ok(())
}
