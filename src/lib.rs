//! Umbrella crate for the ROAD reproduction workspace.
//!
//! Re-exports every member crate under one roof so the top-level
//! integration tests (`tests/`) and runnable examples (`examples/`) have a
//! single anchor package. Library users should depend on the individual
//! crates (`road-core`, `road-network`, …) directly.

pub use road_baselines as baselines;
pub use road_bench as bench;
pub use road_core as core;
pub use road_network as network;
pub use road_spatial as spatial;
pub use road_storage as storage;
