//! Workspace-level end-to-end tests: the full paper story on one network —
//! build everything, query everything, update everything, and check the
//! relative behaviour the paper claims.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_bench::config::Params;
use road_bench::runner::{build_engine, EngineKind};
use road_bench::workload;
use road_core::model::ObjectFilter;
use road_core::prelude::*;
use road_network::dijkstra::estimate_diameter;
use road_network::generator::Dataset;

#[test]
fn the_whole_paper_story_on_a_ca_like_network() {
    let params = Params::default();
    let g = Dataset::CaHighways.generate_scaled(0.08, params.seed).unwrap();
    let objects = workload::uniform_objects(&g, 20, params.seed + 1);
    let queries = workload::query_nodes(&g, 12, params.seed + 2);
    let diameter = estimate_diameter(&g, params.metric);

    let mut engines: Vec<_> =
        EngineKind::ALL.iter().map(|&k| build_engine(k, &g, &objects, &params, 3)).collect();

    // 1. All approaches agree on every query (kNN and range).
    let mut road_nodes = 0usize;
    let mut netexp_nodes = 0usize;
    for &node in &queries {
        let mut reference: Option<Vec<(u64, f64)>> = None;
        for engine in engines.iter_mut() {
            let res = engine.knn(node, 5, &ObjectFilter::Any);
            let mut norm: Vec<(u64, f64)> =
                res.hits.iter().map(|h| (h.object.0, h.distance.get())).collect();
            norm.sort_by_key(|&(o, _)| o);
            match &reference {
                None => reference = Some(norm),
                Some(want) => {
                    assert_eq!(norm.len(), want.len(), "{} hit count", engine.name());
                    for ((o1, d1), (o2, d2)) in norm.iter().zip(want) {
                        assert_eq!(o1, o2, "{}", engine.name());
                        assert!((d1 - d2).abs() <= 1e-5 * d1.abs().max(1.0), "{}", engine.name());
                    }
                }
            }
            match engine.name() {
                "ROAD" => road_nodes += res.nodes_visited,
                "NetExp" => netexp_nodes += res.nodes_visited,
                _ => {}
            }
        }
    }

    // 2. The paper's headline: ROAD touches far fewer node records.
    assert!(
        road_nodes * 2 < netexp_nodes,
        "ROAD {road_nodes} node touches vs NetExp {netexp_nodes}"
    );

    // 3. Range queries agree too.
    let radius = road_network::Weight::new(diameter.get() * 0.1);
    for &node in queries.iter().take(4) {
        let mut counts = Vec::new();
        for engine in engines.iter_mut() {
            counts.push((engine.name(), engine.range(node, radius, &ObjectFilter::Any).hits.len()));
        }
        let first = counts[0].1;
        for &(name, c) in &counts {
            assert_eq!(c, first, "{name} returned {c} range hits vs {first}");
        }
    }

    // 4. Index sizes order as in Figure 13: DistIdx dwarfs the rest.
    let sizes: Vec<(&str, usize)> =
        engines.iter().map(|e| (e.name(), e.index_size_bytes())).collect();
    let size_of = |n: &str| sizes.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(size_of("DistIdx") > size_of("ROAD"));
    assert!(size_of("DistIdx") > size_of("NetExp") * 2);
}

#[test]
fn framework_survives_a_day_of_city_operations() {
    // A "day in the life" scenario: morning build, object churn at noon,
    // rush-hour congestion, a road closure, an evening road opening —
    // querying continuously against the oracle.
    let mut rng = StdRng::seed_from_u64(2026);
    let g = Dataset::SfStreets.generate_scaled(0.012, 5).unwrap();
    let mut road = RoadFramework::builder(g).fanout(4).levels(3).build().unwrap();
    let mut pois = AssociationDirectory::new(road.hierarchy());
    let mut next_id = 0u64;
    let edge_count = road.network().edge_slots() as u32;
    for _ in 0..30 {
        let o = Object::new(
            ObjectId(next_id),
            road_network::EdgeId(rng.random_range(0..edge_count)),
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..3)),
        );
        next_id += 1;
        pois.insert(road.network(), road.hierarchy(), o).unwrap();
    }

    let check = |road: &RoadFramework, pois: &AssociationDirectory, rng: &mut StdRng| {
        let node = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
        let q = KnnQuery::new(node, 4);
        let got = road.knn(pois, &q).unwrap();
        let want = road_core::search::oracle_knn(road, pois, &q);
        assert_eq!(got.hits.len(), want.len());
        for (g_hit, w_hit) in got.hits.iter().zip(&want) {
            assert!(g_hit.distance.approx_eq(w_hit.distance));
        }
    };

    check(&road, &pois, &mut rng);
    // Noon: object churn.
    for _ in 0..10 {
        let o = Object::new(
            ObjectId(next_id),
            road_network::EdgeId(rng.random_range(0..edge_count)),
            0.5,
            CategoryId(0),
        );
        next_id += 1;
        pois.insert(road.network(), road.hierarchy(), o).unwrap();
        check(&road, &pois, &mut rng);
    }
    // Rush hour: congest 20 random edges.
    for _ in 0..20 {
        let edges: Vec<_> = road.network().edge_ids().collect();
        let e = edges[rng.random_range(0..edges.len())];
        let w = road.network().weight(e, road.metric());
        road.set_edge_weight(e, Weight::new(w.get() * 3.0)).unwrap();
    }
    check(&road, &pois, &mut rng);
    // A closure and an opening.
    let edges: Vec<_> = road.network().edge_ids().collect();
    let closed = edges[rng.random_range(0..edges.len())];
    road.set_edge_weight(closed, Weight::INFINITY).unwrap();
    check(&road, &pois, &mut rng);
    let a = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    let b = NodeId(rng.random_range(0..road.network().num_nodes() as u32));
    if a != b && road.network().edge_between(a, b).is_none() {
        let w = Weight::new(0.5);
        road.add_edge(a, b, (w, w, Weight::ZERO)).unwrap();
    }
    check(&road, &pois, &mut rng);
    // The overlay is still exactly what a fresh build would produce.
    road.verify().unwrap();
    pois.validate(road.network(), road.hierarchy()).unwrap();
}

#[test]
fn every_metric_is_queryable() {
    let g = Dataset::CaHighways.generate_scaled(0.02, 8).unwrap();
    let objects = workload::uniform_objects(&g, 8, 3);
    for metric in road_network::graph::WeightKind::ALL {
        let road =
            RoadFramework::builder(g.clone()).fanout(2).levels(2).metric(metric).build().unwrap();
        let mut ad = AssociationDirectory::new(road.hierarchy());
        for o in &objects {
            ad.insert(road.network(), road.hierarchy(), o.clone()).unwrap();
        }
        let q = KnnQuery::new(NodeId(0), 3);
        let got = road.knn(&ad, &q).unwrap();
        let want = road_core::search::oracle_knn(&road, &ad, &q);
        assert_eq!(got.hits.len(), want.len(), "{metric:?}");
        for (g_hit, w_hit) in got.hits.iter().zip(&want) {
            assert!(g_hit.distance.approx_eq(w_hit.distance), "{metric:?}");
        }
    }
}
