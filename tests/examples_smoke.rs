//! Smoke tests for the six runnable examples: each is spawned as a child
//! process (cargo builds examples before running integration tests, so the
//! binaries exist next to this test's own executable) and must exit cleanly
//! with the expected result markers in its output, so examples can't
//! silently rot.

use std::path::PathBuf;
use std::process::Command;

/// `target/<profile>/examples`, derived from the test binary's own path
/// (`target/<profile>/deps/<test>`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    exe.parent()
        .and_then(|deps| deps.parent())
        .map(|profile| profile.join("examples"))
        .expect("examples dir next to test binary")
}

/// Runs one example and asserts exit 0, non-empty stdout, and that every
/// marker (a stable fragment of a computed result line) is present.
fn run_example(name: &str, markers: &[&str]) {
    let bin = examples_dir().join(name);
    assert!(
        bin.exists(),
        "example binary {} not built; run via `cargo test` so cargo builds examples first",
        bin.display()
    );
    let out = Command::new(&bin).output().expect("spawn example");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "{name} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status.code()
    );
    assert!(!stdout.trim().is_empty(), "{name} printed nothing");
    for marker in markers {
        assert!(stdout.contains(marker), "{name} output missing {marker:?}\nstdout:\n{stdout}");
    }
}

#[test]
fn quickstart_reports_overlay_and_answers() {
    run_example(
        "quickstart",
        &["network: 400 nodes", "overlay:", "nearest cafes", "network distance"],
    );
}

#[test]
fn city_poi_search_finds_restaurants_and_pharmacy() {
    run_example(
        "city_poi_search",
        &["street network:", "nearest restaurants", "nearest pharmacy", "network distance"],
    );
}

#[test]
fn live_traffic_survives_congestion_closure_and_construction() {
    run_example(
        "live_traffic",
        &[
            "highway network:",
            "nearest service station",
            "published snapshot v1",
            "reader on held snapshot v0",
            "reader on fresh snapshot v1",
            "final 3NN",
            "writer lifetime:",
        ],
    );
}

#[test]
fn disk_serving_pages_in_and_agrees() {
    run_example(
        "disk_serving",
        &[
            "built overlay:",
            "persisted image:",
            "replica opened lazily: 0/",
            "first burst: 40 queries oracle-checked",
            "warm burst:",
            "concurrent burst: 40 queries from 4 threads",
            "buffer sweep",
        ],
    );
}

#[test]
fn group_meetup_agrees_after_reload() {
    run_example(
        "group_meetup",
        &["built overlay", "farthest friend travels", "reloaded overlay verified"],
    );
}

#[test]
fn conference_planner_answers_all_queries() {
    run_example("conference_planner", &["conference venue", "nearest bus station", "within"]);
}
