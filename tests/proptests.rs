//! Property-based tests over the whole stack: random networks, random
//! hierarchies, random objects, random queries — the framework must always
//! agree with brute force and keep its structural invariants.

use proptest::prelude::*;
use road_core::prelude::*;
use road_core::search::{oracle_knn, oracle_range};
use road_network::generator::simple;
use road_network::graph::RoadNetwork;
use road_network::{EdgeId, Weight};

/// Strategy: a connected random network plus derived placements.
fn network_strategy() -> impl Strategy<Value = (RoadNetwork, u64)> {
    (10usize..80, 0usize..30, 0u64..1000)
        .prop_map(|(n, extra, seed)| (simple::random_connected(n, extra, seed), seed))
}

fn build_framework(g: RoadNetwork, fanout: usize, levels: u32) -> RoadFramework {
    RoadFramework::builder(g).fanout(fanout).levels(levels).build().unwrap()
}

fn scatter(fw: &RoadFramework, count: usize, seed: u64) -> AssociationDirectory {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
    let mut ad = AssociationDirectory::new(fw.hierarchy());
    for i in 0..count {
        let o = Object::new(
            ObjectId(i as u64),
            edges[rng.random_range(0..edges.len())],
            rng.random_range(0.0..=1.0),
            CategoryId(rng.random_range(0..3)),
        );
        ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
    }
    ad
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 4 invariants hold on arbitrary connected networks for
    /// arbitrary (fanout, levels) combinations.
    #[test]
    fn hierarchy_invariants((g, _) in network_strategy(),
                            fanout in prop_oneof![Just(2usize), Just(4)],
                            levels in 1u32..4) {
        let fw = build_framework(g, fanout, levels);
        fw.hierarchy().validate(fw.network()).unwrap();
    }

    /// kNN always matches the brute-force oracle.
    #[test]
    fn knn_matches_oracle((g, seed) in network_strategy(),
                          k in 1usize..6,
                          objects in 1usize..15,
                          query in 0u32..60) {
        let query = query % g.num_nodes() as u32;
        let fw = build_framework(g, 2, 2);
        let ad = scatter(&fw, objects, seed + 7);
        let q = KnnQuery::new(NodeId(query), k);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        prop_assert_eq!(got.hits.len(), want.len());
        for (g_hit, w_hit) in got.hits.iter().zip(&want) {
            prop_assert!(g_hit.distance.approx_eq(w_hit.distance),
                "{} vs {}", g_hit.distance, w_hit.distance);
        }
    }

    /// Range always matches the brute-force oracle, object sets included.
    #[test]
    fn range_matches_oracle((g, seed) in network_strategy(),
                            radius in 1.0f64..120.0,
                            objects in 1usize..15,
                            query in 0u32..60) {
        let query = query % g.num_nodes() as u32;
        let fw = build_framework(g, 4, 2);
        let ad = scatter(&fw, objects, seed + 13);
        let q = RangeQuery::new(NodeId(query), Weight::new(radius));
        let got = fw.range(&ad, &q).unwrap();
        let want = oracle_range(&fw, &ad, &q);
        let mut got_ids: Vec<u64> = got.hits.iter().map(|h| h.object.0).collect();
        let mut want_ids: Vec<u64> = want.iter().map(|h| h.object.0).collect();
        got_ids.sort_unstable();
        want_ids.sort_unstable();
        prop_assert_eq!(got_ids, want_ids);
    }

    /// Point-to-point distances through the overlay equal Dijkstra.
    #[test]
    fn overlay_distances_exact((g, _) in network_strategy(),
                               a in 0u32..60, b in 0u32..60) {
        let a = NodeId(a % g.num_nodes() as u32);
        let b = NodeId(b % g.num_nodes() as u32);
        let want = road_network::dijkstra::shortest_path_weight(
            &g, road_network::graph::WeightKind::Distance, a, b);
        let fw = build_framework(g, 2, 3);
        let got = fw.network_distance(a, b).unwrap();
        match (got, want) {
            (Some(x), Some(y)) => prop_assert!(x.approx_eq(y), "{} vs {}", x, y),
            (x, y) => prop_assert_eq!(x.is_some(), y.is_some()),
        }
    }

    /// Weight updates preserve exactness (the filter-and-refresh path).
    #[test]
    fn updates_preserve_exactness((g, seed) in network_strategy(),
                                  updates in prop::collection::vec((0u32..200, 0.1f64..30.0), 1..6),
                                  query in 0u32..60) {
        let query = query % g.num_nodes() as u32;
        let mut fw = build_framework(g, 2, 2);
        let ad = scatter(&fw, 6, seed + 23);
        let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
        for (e_idx, w) in updates {
            let e = edges[e_idx as usize % edges.len()];
            fw.set_edge_weight(e, Weight::new(w)).unwrap();
        }
        let q = KnnQuery::new(NodeId(query), 3);
        let got = fw.knn(&ad, &q).unwrap();
        let want = oracle_knn(&fw, &ad, &q);
        prop_assert_eq!(got.hits.len(), want.len());
        for (g_hit, w_hit) in got.hits.iter().zip(&want) {
            prop_assert!(g_hit.distance.approx_eq(w_hit.distance));
        }
    }

    /// Object churn keeps Lemma 1 abstracts exact.
    #[test]
    fn abstract_bookkeeping_is_exact((g, seed) in network_strategy(),
                                     ops in prop::collection::vec((0u8..2, 0u32..40), 1..30)) {
        let fw = build_framework(g, 2, 2);
        let edges: Vec<EdgeId> = fw.network().edge_ids().collect();
        let mut ad = AssociationDirectory::new(fw.hierarchy());
        let mut alive = std::collections::BTreeSet::new();
        for (op, x) in ops {
            if op == 0 {
                let id = ObjectId((x % 40) as u64);
                if alive.insert(id) {
                    let o = Object::new(id, edges[(x as usize * 7 + seed as usize) % edges.len()],
                        0.5, CategoryId((x % 3) as u16));
                    ad.insert(fw.network(), fw.hierarchy(), o).unwrap();
                }
            } else {
                let id = ObjectId((x % 40) as u64);
                if alive.remove(&id) {
                    ad.remove(fw.network(), fw.hierarchy(), id).unwrap();
                }
            }
        }
        prop_assert_eq!(ad.len(), alive.len());
        ad.validate(fw.network(), fw.hierarchy()).unwrap();
    }
}
