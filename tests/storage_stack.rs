//! Integration tests of the storage stack working together: B+-tree over
//! the buffer pool over the page store, CCAM layouts feeding the I/O
//! tracker — the machinery behind every I/O number in the figures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use road_network::generator::simple;
use road_spatial::{CountingBloom, Signature};
use road_storage::ccam::NodeClustering;
use road_storage::lru::LruCache;
use road_storage::pagemap::{IoTracker, PageMap};
use road_storage::{BPlusTree, BufferPool, PageStore, DEFAULT_BUFFER_PAGES, PAGE_SIZE};

#[test]
fn bptree_as_association_directory_index() {
    // Model the paper's Association Directory: node id -> object-record
    // pointer for 10k nodes, under a 50-page buffer.
    let mut pool = BufferPool::new(PageStore::new(), DEFAULT_BUFFER_PAGES);
    let mut tree = BPlusTree::new(&mut pool).unwrap();
    let mut pages = PageMap::new();
    for node in (0..10_000u64).step_by(7) {
        let (pg, _) = pages.insert(node, 32);
        tree.insert(&mut pool, node, pg as u64).unwrap();
    }
    pool.clear_cache();
    pool.reset_stats();
    // A cold lookup path costs height+1 page faults at most.
    let v = tree.get(&mut pool, 7 * 100).unwrap();
    assert!(v.is_some());
    let faults = pool.stats().page_faults;
    assert!(faults as u32 <= tree.height() + 1, "lookup cost {faults} pages");
    // Missing keys are cheap too and prove absence.
    assert_eq!(tree.get(&mut pool, 3).unwrap(), None);
}

#[test]
fn ccam_beats_random_placement_for_expansion_io() {
    // The reason every engine stores node records with CCAM (ref [18]):
    // a BFS-ordered layout faults far less under network expansion than a
    // scattered one.
    let g = simple::grid(40, 40, 1.0);
    let record = |_: road_network::NodeId| 128usize;
    let ccam = NodeClustering::build(&g, record);

    // Scattered layout: node i -> page by hashed order (same record size).
    let per_page = PAGE_SIZE / 128;
    let scatter_page =
        |n: u32| (n.wrapping_mul(2654435761) % (g.num_nodes() as u32)) / per_page as u32;

    // Expand from a corner in BFS order, touching each node's page.
    let mut order = Vec::new();
    {
        let mut seen = vec![false; g.num_nodes()];
        let mut queue = std::collections::VecDeque::from([road_network::NodeId(0)]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (_, v) in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let mut io_ccam = IoTracker::paper_default();
    let mut io_rand = IoTracker::paper_default();
    for &n in order.iter().take(400) {
        let (p, span) = ccam.span_of(n);
        io_ccam.touch_span(0, p, span);
        io_rand.touch(0, scatter_page(n.0));
    }
    assert!(
        io_ccam.faults() * 2 < io_rand.faults(),
        "CCAM {} faults vs scattered {}",
        io_ccam.faults(),
        io_rand.faults()
    );
}

#[test]
fn buffer_pool_bounds_resident_pages() {
    let mut pool = BufferPool::new(PageStore::new(), 10);
    let ids: Vec<_> = (0..100).map(|_| pool.alloc()).collect();
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = i as u8).unwrap();
    }
    // Everything is still readable (write-back worked) …
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page(id, |p| assert_eq!(p.bytes()[0], i as u8)).unwrap();
    }
    // … and the store carries the truth after a flush.
    pool.clear_cache();
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page(id, |p| assert_eq!(p.bytes()[0], i as u8)).unwrap();
    }
}

/// LRU eviction order must respect *re-pins*: an old page that gets
/// touched again (via `get`, a `put` update, or a pool read) moves to the
/// MRU end and outlives everything that was younger before the re-pin.
#[test]
fn lru_eviction_order_under_repin() {
    let mut c: LruCache<u32, u32> = LruCache::new(4);
    for k in 0..4 {
        c.put(k, k * 10);
    }
    // Re-pin the two oldest in reverse age order: 1 then 0.
    assert_eq!(c.get(&1), Some(&mut 10));
    assert_eq!(c.get(&0), Some(&mut 0));
    // Recency now (LRU -> MRU): 2, 3, 1, 0. Overflow four times and check
    // the exact eviction sequence.
    assert_eq!(c.put(4, 40), Some((2, 20)));
    assert_eq!(c.put(5, 50), Some((3, 30)));
    // Updating key 1 re-pins it again, so 0 goes before 1.
    assert_eq!(c.put(1, 11), None);
    assert_eq!(c.put(6, 60), Some((0, 0)));
    assert_eq!(c.put(7, 70), Some((4, 40)));
    let survivors: Vec<u32> = {
        let mut keys: Vec<u32> = c.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys
    };
    assert_eq!(survivors, vec![1, 5, 6, 7]);
}

/// The same property observed through the buffer pool: re-reading a page
/// mid-stream keeps it resident across evictions that claim its cohort.
#[test]
fn buffer_pool_repin_protects_hot_page() {
    let mut pool = BufferPool::new(PageStore::new(), 3);
    let pages: Vec<_> = (0..6).map(|_| pool.alloc()).collect();
    pool.clear_cache();
    pool.reset_stats();
    // Fault in 0, 1, 2; re-pin 0; then stream 3 and 4 (evicting 1 and 2).
    for &p in &pages[..3] {
        pool.with_page(p, |_| ()).unwrap();
    }
    pool.with_page(pages[0], |_| ()).unwrap();
    pool.with_page(pages[3], |_| ()).unwrap();
    pool.with_page(pages[4], |_| ()).unwrap();
    let faults_before = pool.stats().page_faults;
    pool.with_page(pages[0], |_| ()).unwrap(); // still resident: no fault
    assert_eq!(pool.stats().page_faults, faults_before, "re-pinned page was evicted");
    pool.with_page(pages[1], |_| ()).unwrap(); // evicted: faults
    assert_eq!(pool.stats().page_faults, faults_before + 1);
}

/// B+-tree structural edge cases at the smallest legal fanouts: splits at
/// exactly-full nodes, merges at exactly-half-empty nodes, root collapse —
/// for every (leaf_cap, int_cap) boundary combination.
#[test]
fn bptree_split_merge_at_boundary_fanouts() {
    for (leaf_cap, int_cap) in [(3usize, 3usize), (3, 4), (4, 3), (4, 4), (5, 3)] {
        let mut pool = BufferPool::new(PageStore::new(), 8);
        let mut tree = BPlusTree::with_caps(&mut pool, leaf_cap, int_cap).unwrap();
        let mut model = std::collections::BTreeMap::new();
        // Ascending fill to one past every split boundary.
        let n = (leaf_cap * int_cap * int_cap + 1) as u64;
        for k in 0..n {
            assert_eq!(
                tree.insert(&mut pool, k, !k).unwrap(),
                model.insert(k, !k),
                "caps {leaf_cap}/{int_cap}"
            );
        }
        assert!(tree.height() >= 2, "caps {leaf_cap}/{int_cap} never built height");
        assert_eq!(
            tree.entries(&mut pool).unwrap(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
        // Descending removal drains through every merge/borrow path.
        for k in (0..n).rev() {
            assert_eq!(
                tree.remove(&mut pool, k).unwrap(),
                model.remove(&k),
                "caps {leaf_cap}/{int_cap}"
            );
            if k % 7 == 0 {
                // Interleaved probes keep lookups honest mid-rebalance.
                assert_eq!(tree.get(&mut pool, k / 2).unwrap(), model.get(&(k / 2)).copied());
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0, "caps {leaf_cap}/{int_cap} left a tall empty tree");
        assert_eq!(tree.num_pages(), 1);
    }
}

/// Zigzag insert/remove around one boundary key count, alternating ends —
/// the pattern that historically breaks borrow-direction bookkeeping.
#[test]
fn bptree_zigzag_at_split_boundary() {
    let mut pool = BufferPool::new(PageStore::new(), 8);
    let mut tree = BPlusTree::with_caps(&mut pool, 3, 3).unwrap();
    for round in 0..40u64 {
        let base = round * 100;
        for k in 0..9 {
            tree.insert(&mut pool, base + k, k).unwrap();
        }
        // Remove from alternating ends to force left- and right-sibling
        // merges in the same subtree.
        for (i, k) in (0..9).enumerate() {
            let key = if i % 2 == 0 { base + k } else { base + 8 - k };
            tree.remove(&mut pool, key).unwrap();
        }
    }
    assert!(tree.is_empty());
    assert_eq!(tree.num_pages(), 1);
}

/// The counting Bloom filter's false-positive rate must stay within a
/// small factor of the theoretical bound `(1 - e^{-kn/m})^k`.
#[test]
fn bloom_false_positive_rate_within_bound() {
    let (cells, hashes, items) = (1024usize, 4u32, 150usize);
    let mut bloom = CountingBloom::new(cells, hashes);
    for key in 0..items as u64 {
        bloom.insert(key);
    }
    // No false negatives, ever.
    for key in 0..items as u64 {
        assert!(bloom.may_contain(key), "false negative for {key}");
    }
    let trials = 20_000u64;
    let fps = (0..trials).filter(|t| bloom.may_contain(1_000_000 + t)).count();
    let rate = fps as f64 / trials as f64;
    let k = hashes as f64;
    let bound = (1.0 - (-k * items as f64 / cells as f64).exp()).powf(k);
    assert!(
        rate <= bound * 2.0 + 0.005,
        "bloom FP rate {rate:.4} exceeds 2x theoretical bound {bound:.4}"
    );
    // Deleting everything restores an empty (all-negative) filter.
    for key in 0..items as u64 {
        bloom.remove(key);
    }
    assert!(bloom.is_empty());
    assert!((0..200u64).all(|t| !bloom.may_contain(5_000_000 + t)));
}

/// Superimposed-coding signatures obey the same bound (they are a Bloom
/// filter without deletion), and union must never lose members.
#[test]
fn signature_false_positive_rate_and_union() {
    let (width, bits, items) = (1024usize, 4u32, 150usize);
    let mut sig = Signature::new(width, bits);
    for v in 0..items as u64 {
        sig.insert(v);
    }
    for v in 0..items as u64 {
        assert!(sig.may_contain(v), "false negative for {v}");
    }
    let trials = 20_000u64;
    let fps = (0..trials).filter(|t| sig.may_contain(1_000_000 + t)).count();
    let rate = fps as f64 / trials as f64;
    let k = bits as f64;
    let bound = (1.0 - (-k * items as f64 / width as f64).exp()).powf(k);
    assert!(
        rate <= bound * 2.0 + 0.005,
        "signature FP rate {rate:.4} exceeds 2x theoretical bound {bound:.4}"
    );
    // Union covers both operand sets (Lemma 1's superimposition).
    let mut a = Signature::new(width, bits);
    let mut b = Signature::new(width, bits);
    for v in 0..40u64 {
        a.insert(v);
        b.insert(1000 + v);
    }
    let mut u = a.clone();
    u.union_with(&b);
    assert!((0..40u64).all(|v| u.may_contain(v) && u.may_contain(1000 + v)));
    assert!(u.covers(&a) && u.covers(&b));
}

/// Stress pass (CI `--include-ignored`): a large randomized B+-tree soak
/// under a tiny buffer, checked against a model at every step batch.
#[test]
#[ignore = "stress: 100k-op B+-tree soak, run via --include-ignored"]
fn stress_bptree_soak_under_tiny_buffer() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut pool = BufferPool::new(PageStore::new(), 4);
    let mut tree = BPlusTree::with_caps(&mut pool, 4, 4).unwrap();
    let mut model = std::collections::BTreeMap::new();
    for step in 0..100_000u64 {
        let key = rng.random_range(0..4_000u64);
        match rng.random_range(0..5) {
            0..=2 => {
                assert_eq!(tree.insert(&mut pool, key, step).unwrap(), model.insert(key, step));
            }
            3 => {
                assert_eq!(tree.remove(&mut pool, key).unwrap(), model.remove(&key));
            }
            _ => {
                assert_eq!(tree.get(&mut pool, key).unwrap(), model.get(&key).copied());
            }
        }
        if step % 20_000 == 0 {
            assert_eq!(
                tree.entries(&mut pool).unwrap(),
                model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
            );
        }
    }
    assert_eq!(tree.len() as usize, model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paged B+-tree agrees with BTreeMap under arbitrary workloads
    /// and tiny buffers (heavy eviction).
    #[test]
    fn bptree_model_under_tiny_buffer(ops in prop::collection::vec((0u8..3, 0u64..200), 1..120)) {
        let mut pool = BufferPool::new(PageStore::new(), 4);
        let mut tree = BPlusTree::with_caps(&mut pool, 4, 4).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => { prop_assert_eq!(tree.insert(&mut pool, key, key + 1).unwrap(), model.insert(key, key + 1)); }
                1 => { prop_assert_eq!(tree.remove(&mut pool, key).unwrap(), model.remove(&key)); }
                _ => { prop_assert_eq!(tree.get(&mut pool, key).unwrap(), model.get(&key).copied()); }
            }
        }
        let got = tree.entries(&mut pool).unwrap();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// PageMap never overlaps records and counts pages consistently.
    #[test]
    fn pagemap_spans_are_disjoint(sizes in prop::collection::vec(1usize..9000, 1..60)) {
        let mut m = PageMap::new();
        let mut spans = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            spans.push((m.insert(i as u64, *s), *s));
        }
        // Multi-page records own their pages exclusively.
        for (i, &((start, span), size)) in spans.iter().enumerate() {
            prop_assert!(span >= 1);
            prop_assert!(size <= span as usize * PAGE_SIZE);
            if span > 1 {
                for (j, &((s2, sp2), _)) in spans.iter().enumerate() {
                    if i != j {
                        let a = start..start + span;
                        let b = s2..s2 + sp2;
                        prop_assert!(a.end <= b.start || b.end <= a.start,
                            "record {i} span {a:?} overlaps record {j} span {b:?}");
                    }
                }
            }
        }
        prop_assert!(m.num_pages() as u32 >= spans.iter().map(|&((s, sp), _)| s + sp).max().unwrap_or(0));
    }
}
