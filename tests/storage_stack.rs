//! Integration tests of the storage stack working together: B+-tree over
//! the buffer pool over the page store, CCAM layouts feeding the I/O
//! tracker — the machinery behind every I/O number in the figures.

use proptest::prelude::*;
use road_network::generator::simple;
use road_storage::ccam::NodeClustering;
use road_storage::pagemap::{IoTracker, PageMap};
use road_storage::{BPlusTree, BufferPool, PageStore, DEFAULT_BUFFER_PAGES, PAGE_SIZE};

#[test]
fn bptree_as_association_directory_index() {
    // Model the paper's Association Directory: node id -> object-record
    // pointer for 10k nodes, under a 50-page buffer.
    let mut pool = BufferPool::new(PageStore::new(), DEFAULT_BUFFER_PAGES);
    let mut tree = BPlusTree::new(&mut pool);
    let mut pages = PageMap::new();
    for node in (0..10_000u64).step_by(7) {
        let (pg, _) = pages.insert(node, 32);
        tree.insert(&mut pool, node, pg as u64);
    }
    pool.clear_cache();
    pool.reset_stats();
    // A cold lookup path costs height+1 page faults at most.
    let v = tree.get(&mut pool, 7 * 100);
    assert!(v.is_some());
    let faults = pool.stats().page_faults;
    assert!(faults as u32 <= tree.height() + 1, "lookup cost {faults} pages");
    // Missing keys are cheap too and prove absence.
    assert_eq!(tree.get(&mut pool, 3), None);
}

#[test]
fn ccam_beats_random_placement_for_expansion_io() {
    // The reason every engine stores node records with CCAM (ref [18]):
    // a BFS-ordered layout faults far less under network expansion than a
    // scattered one.
    let g = simple::grid(40, 40, 1.0);
    let record = |_: road_network::NodeId| 128usize;
    let ccam = NodeClustering::build(&g, record);

    // Scattered layout: node i -> page by hashed order (same record size).
    let per_page = PAGE_SIZE / 128;
    let scatter_page =
        |n: u32| (n.wrapping_mul(2654435761) % (g.num_nodes() as u32)) / per_page as u32;

    // Expand from a corner in BFS order, touching each node's page.
    let mut order = Vec::new();
    {
        let mut seen = vec![false; g.num_nodes()];
        let mut queue = std::collections::VecDeque::from([road_network::NodeId(0)]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (_, v) in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let mut io_ccam = IoTracker::paper_default();
    let mut io_rand = IoTracker::paper_default();
    for &n in order.iter().take(400) {
        let (p, span) = ccam.span_of(n);
        io_ccam.touch_span(0, p, span);
        io_rand.touch(0, scatter_page(n.0));
    }
    assert!(
        io_ccam.faults() * 2 < io_rand.faults(),
        "CCAM {} faults vs scattered {}",
        io_ccam.faults(),
        io_rand.faults()
    );
}

#[test]
fn buffer_pool_bounds_resident_pages() {
    let mut pool = BufferPool::new(PageStore::new(), 10);
    let ids: Vec<_> = (0..100).map(|_| pool.alloc()).collect();
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = i as u8);
    }
    // Everything is still readable (write-back worked) …
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page(id, |p| assert_eq!(p.bytes()[0], i as u8));
    }
    // … and the store carries the truth after a flush.
    pool.clear_cache();
    for (i, &id) in ids.iter().enumerate() {
        pool.with_page(id, |p| assert_eq!(p.bytes()[0], i as u8));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paged B+-tree agrees with BTreeMap under arbitrary workloads
    /// and tiny buffers (heavy eviction).
    #[test]
    fn bptree_model_under_tiny_buffer(ops in prop::collection::vec((0u8..3, 0u64..200), 1..120)) {
        let mut pool = BufferPool::new(PageStore::new(), 4);
        let mut tree = BPlusTree::with_caps(&mut pool, 4, 4);
        let mut model = std::collections::BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => { prop_assert_eq!(tree.insert(&mut pool, key, key + 1), model.insert(key, key + 1)); }
                1 => { prop_assert_eq!(tree.remove(&mut pool, key), model.remove(&key)); }
                _ => { prop_assert_eq!(tree.get(&mut pool, key), model.get(&key).copied()); }
            }
        }
        let got = tree.entries(&mut pool);
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// PageMap never overlaps records and counts pages consistently.
    #[test]
    fn pagemap_spans_are_disjoint(sizes in prop::collection::vec(1usize..9000, 1..60)) {
        let mut m = PageMap::new();
        let mut spans = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            spans.push((m.insert(i as u64, *s), *s));
        }
        // Multi-page records own their pages exclusively.
        for (i, &((start, span), size)) in spans.iter().enumerate() {
            prop_assert!(span >= 1);
            prop_assert!(size <= span as usize * PAGE_SIZE);
            if span > 1 {
                for (j, &((s2, sp2), _)) in spans.iter().enumerate() {
                    if i != j {
                        let a = start..start + span;
                        let b = s2..s2 + sp2;
                        prop_assert!(a.end <= b.start || b.end <= a.start,
                            "record {i} span {a:?} overlaps record {j} span {b:?}");
                    }
                }
            }
        }
        prop_assert!(m.num_pages() as u32 >= spans.iter().map(|&((s, sp), _)| s + sp).max().unwrap_or(0));
    }
}
