//! Compile-time thread-safety assertions for every type the serving path
//! shares across threads. These are static assertions: if a refactor
//! accidentally drops `Send`/`Sync` from an engine (say, by storing an
//! `Rc` or a raw pointer), this file stops compiling — no runtime test
//! required.

use road::core::{LiveEngine, PagedEngine, QueryEngine, Snapshot, UpdateHandle};
use road::storage::StripedBufferPool;
use std::panic::RefUnwindSafe;
use std::sync::Arc;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_ref_unwind_safe<T: RefUnwindSafe>() {}

#[test]
fn engines_are_send_and_sync() {
    // QueryEngine: shared by reference across scoped batch workers.
    assert_send::<QueryEngine>();
    assert_sync::<QueryEngine>();

    // LiveEngine + UpdateHandle: readers and the single writer live on
    // different threads; snapshots are handed across thread boundaries.
    assert_send::<LiveEngine>();
    assert_sync::<LiveEngine>();
    assert_send::<UpdateHandle>();
    assert_send::<Arc<Snapshot>>();
    assert_sync::<Arc<Snapshot>>();

    // PagedEngine: one shared disk-resident engine serves all threads.
    assert_send::<PagedEngine>();
    assert_sync::<PagedEngine>();

    // The lock-striped pool underneath it.
    assert_send::<StripedBufferPool>();
    assert_sync::<StripedBufferPool>();
}

#[test]
fn serving_types_survive_unwind_boundaries() {
    // A panic in one request must not poison the whole process: the
    // serving loop catches unwinds around worker closures, so the shared
    // engines must be legitimately RefUnwindSafe (their interior
    // mutability is all Mutex/RwLock/atomics, which surface a poisoned
    // state as an error rather than UB).
    assert_ref_unwind_safe::<QueryEngine>();
    assert_ref_unwind_safe::<LiveEngine>();
    assert_ref_unwind_safe::<PagedEngine>();
    assert_ref_unwind_safe::<StripedBufferPool>();
    assert_ref_unwind_safe::<Arc<Snapshot>>();
}
