//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the narrow API the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! then `sample_size` timed samples and prints the mean wall-clock time per
//! iteration. When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every benchmark body runs exactly once,
//! keeping the test gate fast.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Target time per sample; iteration counts are calibrated against it.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Entry point mirroring criterion's `Criterion`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A group of benchmarks sharing a name prefix and optional sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&label, samples, self.parent.test_mode, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Benchmark label, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` label.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        let mut s = String::new();
        let _ = write!(s, "{function_name}/{parameter}");
        BenchmarkId(s)
    }

    /// Label consisting of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate iterations per sample against the target sample time.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut count = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += t.elapsed();
            count += iters;
        }
        self.mean_ns = total.as_nanos() as f64 / count as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher { samples, test_mode, mean_ns: 0.0 };
    f(&mut b);
    if test_mode {
        println!("test-mode {label}: ok");
    } else {
        println!("{label}: {}", format_ns(b.mean_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Opaque value barrier preventing the optimiser from deleting the routine.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
