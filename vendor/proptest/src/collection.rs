//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// `Vec` of values drawn from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `BTreeSet` of values drawn from `element`; the drawn length is an upper
/// target — duplicates are retried a bounded number of times, so a small
/// element domain may yield fewer elements (matching proptest's behaviour).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(10) + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}
