//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, numeric-range / tuple / [`Just`](strategy::Just) / `prop_map` /
//! [`prop_oneof!`] strategies, and `prop::collection::{vec, btree_set}`.
//!
//! Semantics: each test draws `ProptestConfig::cases` seeded-deterministic
//! random cases and runs the body; `prop_assert!` failures panic with the
//! formatted message. There is no shrinking — on failure the panic message
//! plus the deterministic seed are the reproduction recipe.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::strategy::Union::of($first)$(.or($rest))*
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::case_rng(stringify!($name));
            for __case in 0..config.cases {
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::new_value(&($strat), &mut __rng),
                )+);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
