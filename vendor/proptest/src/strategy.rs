//! Value-generation strategies: numeric ranges, tuples, `Just`, `prop_map`,
//! and uniform unions (backing `prop_oneof!`).

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a fresh value from the test's deterministic RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Starts a union from one strategy (the `prop_oneof!` entry point;
    /// builder form so numeric-literal types unify across the options).
    pub fn of<S: Strategy<Value = T> + 'static>(s: S) -> Self {
        Union { options: vec![Box::new(s)] }
    }

    /// Adds another equally-weighted option.
    pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (**self).new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
