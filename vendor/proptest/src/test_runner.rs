//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Subset of proptest's config: just the case count.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG for one property test, keyed by the test's name so
/// every test explores a distinct but reproducible stream. `PROPTEST_SEED`
/// perturbs all streams at once when set.
pub fn case_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = seed.trim().parse::<u64>() {
            h = h.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    StdRng::seed_from_u64(h)
}
