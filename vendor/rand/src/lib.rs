//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the rand 0.9 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator;
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion;
//! * [`Rng`] / [`RngExt`] — core trait plus `random_range` / `random_bool`;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Everything is deterministic for a given seed, which is exactly what the
//! reproduction needs (seeded generators, reproducible experiments).

use std::ops::{Bound, RangeBounds};

/// Core generator trait: a source of uniformly random 64-bit words.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is needed by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`; `inclusive` widens the bound to `[lo, hi]`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span_signed = hi_w - lo_w + if inclusive { 1 } else { 0 };
                assert!(span_signed > 0, "cannot sample from empty range {lo}..{hi}");
                let span = span_signed as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // stand-in only backs tests and synthetic data generation,
                // where a ~2^-64 modulo bias is irrelevant.
                let x = rng.next_u64() as u128;
                (lo_w + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                } else {
                    assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
                }
                let bits = (rng.next_u64() >> 11) as f64;
                if inclusive {
                    // 53 random bits -> uniform in [0, 1]; hi is reachable.
                    let unit = bits * (1.0 / ((1u64 << 53) - 1) as f64);
                    (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
                } else {
                    // 53 random bits -> uniform in [0, 1); rounding can
                    // still land on hi, so fold that back to lo.
                    let unit = bits * (1.0 / (1u64 << 53) as f64);
                    let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                    if v >= hi { lo } else { v }
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Extension methods mirroring rand 0.9's `Rng` conveniences.
pub trait RngExt: Rng {
    /// Uniform draw from a half-open (`a..b`) or inclusive (`a..=b`) range.
    fn random_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("random_range requires an explicit inclusive start bound")
            }
        };
        match range.end_bound() {
            Bound::Excluded(&hi) => T::sample_range(self, lo, hi, false),
            Bound::Included(&hi) => T::sample_range(self, lo, hi, true),
            Bound::Unbounded => panic!("random_range requires a bounded range"),
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers mirroring rand's `SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(0i32..=4);
            assert!((0..=4).contains(&i));
        }
    }

    #[test]
    fn range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "cannot sample from empty range")]
    fn inverted_int_range_panics_clearly() {
        let mut rng = StdRng::seed_from_u64(1);
        // Bounds as runtime values: simulates a caller computing an
        // inverted range (and sidesteps the literal-empty-range lint).
        let (lo, hi) = (std::hint::black_box(5i32), std::hint::black_box(3i32));
        let _ = rng.random_range(lo..hi);
    }

    #[test]
    fn degenerate_inclusive_ranges_return_the_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.random_range(7u32..=7), 7);
        assert_eq!(rng.random_range(1.0f64..=1.0), 1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
